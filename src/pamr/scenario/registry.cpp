#include "pamr/scenario/registry.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "pamr/util/assert.hpp"

namespace pamr {
namespace scenario {

namespace {

WorkloadLayer uniform_layer(std::int32_t n, double lo, double hi) {
  WorkloadLayer layer;
  layer.kind = WorkloadLayer::Kind::kUniform;
  layer.num_comms = n;
  layer.weight_lo = lo;
  layer.weight_hi = hi;
  return layer;
}

WorkloadLayer length_layer(std::int32_t n, double lo, double hi, std::int32_t length) {
  WorkloadLayer layer;
  layer.kind = WorkloadLayer::Kind::kFixedLength;
  layer.num_comms = n;
  layer.weight_lo = lo;
  layer.weight_hi = hi;
  layer.length = length;
  return layer;
}

WorkloadLayer pattern_layer(TrafficPattern pattern, double weight, double jitter = 0.0) {
  WorkloadLayer layer;
  layer.kind = WorkloadLayer::Kind::kPattern;
  layer.pattern = pattern;
  layer.pattern_weight = weight;
  layer.jitter = jitter;
  // Non-hotspot patterns ignore the coordinate; leaving it defaulted keeps
  // the text form round-trippable (to_string omits it for them).
  if (pattern == TrafficPattern::kHotspot) layer.hotspot = {3, 4};
  return layer;
}

ScenarioSpec single_layer_spec(WorkloadLayer layer) {
  ScenarioSpec spec;
  spec.layers.push_back(std::move(layer));
  return spec;
}

// -- Paper figure sweeps (§6; parameters mirrored by exp::panels) ----------

Scenario count_sweep(std::string name, std::string description, double lo, double hi,
                     std::int32_t max_comms, std::int32_t step) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.description = std::move(description);
  scenario.x_label = "num_comms";
  scenario.default_seed = 7;
  for (std::int32_t n = step; n <= max_comms; n += step) {
    scenario.points.push_back(
        {static_cast<double>(n), single_layer_spec(uniform_layer(n, lo, hi))});
  }
  return scenario;
}

Scenario weight_sweep(std::string name, std::string description,
                      std::int32_t num_comms) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.description = std::move(description);
  scenario.x_label = "avg_weight";
  scenario.default_seed = 8;
  // Constant weights; the paper's cliff sits at 1751 = capacity/2 + ε, so
  // sample that region densely (see exp/panels.hpp for the derivation).
  for (double w : {100.0, 300.0, 500.0, 700.0, 900.0, 1100.0, 1300.0, 1500.0,
                   1600.0, 1700.0, 1740.0, 1760.0, 1800.0, 1900.0, 2000.0, 2200.0,
                   2400.0, 2600.0, 2800.0, 3000.0, 3200.0, 3400.0}) {
    // A zero-width uniform range is degenerate; use ±1 Mb/s around w.
    scenario.points.push_back(
        {w, single_layer_spec(uniform_layer(num_comms, w - 1.0, w + 1.0))});
  }
  return scenario;
}

Scenario length_sweep(std::string name, std::string description, std::int32_t num_comms,
                      double lo, double hi) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.description = std::move(description);
  scenario.x_label = "avg_length";
  scenario.default_seed = 9;
  for (std::int32_t length = 2; length <= 14; ++length) {
    scenario.points.push_back({static_cast<double>(length),
                               single_layer_spec(length_layer(num_comms, lo, hi, length))});
  }
  return scenario;
}

// -- Structured suites beyond the paper ------------------------------------

Scenario permutation_sweep() {
  Scenario scenario;
  scenario.name = "permutations";
  scenario.description = "classic NoC permutation patterns at 700 Mb/s per flow";
  scenario.x_label = "pattern";
  const std::vector<TrafficPattern> patterns = all_traffic_patterns();
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    scenario.points.push_back(
        {static_cast<double>(i), single_layer_spec(pattern_layer(patterns[i], 700.0))});
  }
  return scenario;
}

Scenario transpose_ramp() {
  Scenario scenario;
  scenario.name = "transpose_ramp";
  scenario.description =
      "transpose permutation ramped 100..3500 Mb/s over the instance axis";
  scenario.x_label = "instance_t";
  WorkloadLayer layer = pattern_layer(TrafficPattern::kTranspose, 1.0);
  layer.envelope = IntensityEnvelope::ramp(100.0, 3500.0);
  scenario.points.push_back({0.0, single_layer_spec(std::move(layer))});
  return scenario;
}

Scenario hotspot_storm() {
  Scenario scenario;
  scenario.name = "hotspot_storm";
  scenario.description =
      "random senders converging on 1..4 hotspots under a 2x burst envelope";
  scenario.x_label = "num_hotspots";
  // 24 senders at ~300 Mb/s mean keep one hotspot's in-links (≤ 4 × 3500)
  // just feasible off-peak; the 2x burst tips single-spot storms over.
  for (std::int32_t spots = 1; spots <= 4; ++spots) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayer::Kind::kHotspots;
    layer.num_hotspots = spots;
    layer.num_comms = 24;
    layer.weight_lo = 100.0;
    layer.weight_hi = 500.0;
    layer.envelope = IntensityEnvelope::burst(1.0, 2.0, 0.25);
    scenario.points.push_back(
        {static_cast<double>(spots), single_layer_spec(std::move(layer))});
  }
  return scenario;
}

Scenario multi_app_mix() {
  Scenario scenario;
  scenario.name = "multi_app_mix";
  scenario.description =
      "video pipeline + fork/join analytics + stencil physics; contiguous vs scattered";
  scenario.x_label = "scattered";
  for (const auto placement : {WorkloadLayer::Placement::kContiguous,
                               WorkloadLayer::Placement::kScattered}) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayer::Kind::kApps;
    layer.apps = {
        AppSpec{AppSpec::Shape::kPipeline, 8, 1, 1500.0},   // streaming decoder
        AppSpec{AppSpec::Shape::kForkJoin, 4, 1, 600.0},    // scatter/gather
        AppSpec{AppSpec::Shape::kStencil, 4, 4, 400.0},     // halo exchange
    };
    layer.placement = placement;
    scenario.points.push_back(
        {placement == WorkloadLayer::Placement::kScattered ? 1.0 : 0.0,
         single_layer_spec(std::move(layer))});
  }
  return scenario;
}

Scenario mixed_background() {
  Scenario scenario;
  scenario.name = "mixed_background";
  scenario.description =
      "transpose permutation over a ramped uniform background (layer composition)";
  scenario.x_label = "background_comms";
  for (const std::int32_t n : {10, 20, 30, 40}) {
    ScenarioSpec spec;
    WorkloadLayer background = uniform_layer(n, 100.0, 900.0);
    background.envelope = IntensityEnvelope::ramp(0.5, 2.0);
    spec.layers.push_back(std::move(background));
    spec.layers.push_back(pattern_layer(TrafficPattern::kTranspose, 500.0));
    scenario.points.push_back({static_cast<double>(n), std::move(spec)});
  }
  return scenario;
}

Scenario uniform_burst() {
  Scenario scenario;
  scenario.name = "uniform_burst";
  scenario.description =
      "40 uniform flows with a half-duty 3x burst (failure ratio under storms)";
  scenario.x_label = "instance_t";
  WorkloadLayer layer = uniform_layer(40, 100.0, 1500.0);
  layer.envelope = IntensityEnvelope::burst(1.0, 3.0, 0.5);
  scenario.points.push_back({0.0, single_layer_spec(std::move(layer))});
  return scenario;
}

Scenario ablation_length_mix() {
  Scenario scenario;
  scenario.name = "ablation_length_mix";
  scenario.description =
      "fixed-length short + long flows routed together (§6.3 ablation)";
  scenario.x_label = "long_length";
  for (std::int32_t length = 8; length <= 14; length += 2) {
    ScenarioSpec spec;
    spec.layers.push_back(length_layer(30, 200.0, 800.0, 2));
    spec.layers.push_back(length_layer(15, 200.0, 800.0, length));
    scenario.points.push_back({static_cast<double>(length), std::move(spec)});
  }
  return scenario;
}

// -- New workload layers (trace replay, injection, mesh sweeps, placement) --

Scenario trace_replay() {
  Scenario scenario;
  scenario.name = "trace_replay";
  scenario.description =
      "replay traces/example_8x8.csv, subsampled 8..48 comms per instance";
  scenario.x_label = "sample";
  for (const std::int32_t sample : {8, 16, 24, 32, 48}) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayer::Kind::kTrace;
    layer.trace_file = "traces/example_8x8.csv";
    layer.trace_sample = sample;
    scenario.points.push_back(
        {static_cast<double>(sample), single_layer_spec(std::move(layer))});
  }
  return scenario;
}

Scenario trace_burst() {
  Scenario scenario;
  scenario.name = "trace_burst";
  scenario.description =
      "the full example trace under a quarter-duty 3x burst envelope";
  scenario.x_label = "instance_t";
  WorkloadLayer layer;
  layer.kind = WorkloadLayer::Kind::kTrace;
  layer.trace_file = "traces/example_8x8.csv";
  layer.envelope = IntensityEnvelope::burst(1.0, 3.0, 0.25);
  scenario.points.push_back({0.0, single_layer_spec(std::move(layer))});
  return scenario;
}

ScenarioSpec with_sim(ScenarioSpec spec, std::int64_t cycles, std::int64_t warmup) {
  spec.sim = true;
  spec.sim_cycles = cycles;
  spec.sim_warmup = warmup;
  return spec;
}

Scenario injection_sweep() {
  Scenario scenario;
  scenario.name = "injection_sweep";
  scenario.description =
      "open-loop sim probe: 20 uniform flows swept 0.25x..1.25x intensity";
  scenario.x_label = "intensity";
  for (const double intensity : {0.25, 0.5, 0.75, 1.0, 1.25}) {
    WorkloadLayer layer = uniform_layer(20, 100.0, 1500.0);
    layer.envelope = IntensityEnvelope::constant(intensity);
    scenario.points.push_back(
        {intensity, with_sim(single_layer_spec(std::move(layer)), 4000, 400)});
  }
  return scenario;
}

Scenario injection_ramp() {
  Scenario scenario;
  scenario.name = "injection_ramp";
  scenario.description =
      "open-loop sim probe under a 0.2x..2x ramp over the instance axis";
  scenario.x_label = "instance_t";
  WorkloadLayer layer = uniform_layer(20, 100.0, 1500.0);
  layer.envelope = IntensityEnvelope::ramp(0.2, 2.0);
  scenario.points.push_back(
      {0.0, with_sim(single_layer_spec(std::move(layer)), 4000, 400)});
  return scenario;
}

Scenario mesh_scaling() {
  Scenario scenario;
  scenario.name = "mesh_scaling";
  scenario.description =
      "uniform load at fixed per-core density across 4x4..12x12 meshes";
  scenario.x_label = "mesh_p";
  for (const std::int32_t p : {4, 6, 8, 10, 12}) {
    // 5 comms per 8 cores keeps the paper's 40-comms-at-8x8 density.
    ScenarioSpec spec = single_layer_spec(uniform_layer(5 * p * p / 8, 100.0, 1500.0));
    spec.mesh_p = p;
    spec.mesh_q = p;
    scenario.points.push_back({static_cast<double>(p), std::move(spec)});
  }
  return scenario;
}

Scenario mesh_scaling_transpose() {
  Scenario scenario;
  scenario.name = "mesh_scaling_transpose";
  scenario.description = "transpose permutation at 700 Mb/s across 4x4..12x12 meshes";
  scenario.x_label = "mesh_p";
  for (const std::int32_t p : {4, 6, 8, 10, 12}) {
    ScenarioSpec spec =
        single_layer_spec(pattern_layer(TrafficPattern::kTranspose, 700.0));
    spec.mesh_p = p;
    spec.mesh_q = p;
    scenario.points.push_back({static_cast<double>(p), std::move(spec)});
  }
  return scenario;
}

Scenario placement_modes() {
  Scenario scenario;
  scenario.name = "placement_modes";
  scenario.description =
      "pipeline+stencil mix placed contiguous (0) / scattered (1) / optimized (2)";
  scenario.x_label = "placement";
  const auto modes = {WorkloadLayer::Placement::kContiguous,
                      WorkloadLayer::Placement::kScattered,
                      WorkloadLayer::Placement::kOptimized};
  double x = 0.0;
  for (const auto placement : modes) {
    WorkloadLayer layer;
    layer.kind = WorkloadLayer::Kind::kApps;
    // Small applications on a 6x6 mesh keep the per-instance placement
    // search (routed scoring per candidate swap) affordable at suite scale.
    layer.apps = {
        AppSpec{AppSpec::Shape::kPipeline, 4, 1, 900.0},
        AppSpec{AppSpec::Shape::kStencil, 2, 2, 400.0},
    };
    layer.placement = placement;
    ScenarioSpec spec = single_layer_spec(std::move(layer));
    spec.mesh_p = 6;
    spec.mesh_q = 6;
    scenario.points.push_back({x, std::move(spec)});
    x += 1.0;
  }
  return scenario;
}

// -- Topology axis (topo=rect|torus|diag) ----------------------------------

Scenario topology_compare() {
  Scenario scenario;
  scenario.name = "topology_compare";
  scenario.description =
      "rect (0,3) vs torus (1,4) vs diag (2,5) on the fig7/fig8 workloads";
  scenario.x_label = "topo_x_workload";
  // Identical workloads per topology: the spec's grid draw ignores topo=,
  // so points k and k+3 route the very same communication sets. Workload A
  // (x 0..2) is fig7a's 40-comm uniform mix; workload B (x 3..5) is fig8's
  // near-constant 700 Mb/s weights.
  double x = 0.0;
  for (const auto& [lo, hi, n] :
       {std::tuple{100.0, 1500.0, 40}, std::tuple{699.0, 701.0, 20}}) {
    for (const topo::TopoKind kind :
         {topo::TopoKind::kRect, topo::TopoKind::kTorus, topo::TopoKind::kDiag}) {
      ScenarioSpec spec = single_layer_spec(
          uniform_layer(static_cast<std::int32_t>(n), lo, hi));
      spec.topo = kind;
      scenario.points.push_back({x, std::move(spec)});
      x += 1.0;
    }
  }
  return scenario;
}

Scenario topology_scaling() {
  Scenario scenario;
  scenario.name = "topology_scaling";
  scenario.description =
      "uniform load at fixed per-core density on 4x4..12x12 tori";
  scenario.x_label = "mesh_p";
  for (const std::int32_t p : {4, 6, 8, 10, 12}) {
    // Same density discipline as mesh_scaling, routed on the torus.
    ScenarioSpec spec = single_layer_spec(uniform_layer(5 * p * p / 8, 100.0, 1500.0));
    spec.mesh_p = p;
    spec.mesh_q = p;
    spec.topo = topo::TopoKind::kTorus;
    scenario.points.push_back({static_cast<double>(p), std::move(spec)});
  }
  return scenario;
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry built;
    // Figure 7 — sensitivity to the number of communications (§6.1).
    built.add(count_sweep("fig7a_small", "fig 7a: small comms U[100,1500), nc=10..140",
                          100.0, 1500.0, 140, 10));
    built.add(count_sweep("fig7b_mixed", "fig 7b: mixed comms U[100,2500), nc=5..70",
                          100.0, 2500.0, 70, 5));
    built.add(count_sweep("fig7c_big", "fig 7c: big comms U[2500,3500), nc=2..30",
                          2500.0, 3500.0, 30, 2));
    // Figure 8 — sensitivity to the size of communications (§6.2).
    built.add(weight_sweep("fig8a_few_10comms", "fig 8a: 10 comms, weight swept 100..3400",
                           10));
    built.add(weight_sweep("fig8b_some_20comms",
                           "fig 8b: 20 comms, weight swept 100..3400", 20));
    built.add(weight_sweep("fig8c_numerous_40comms",
                           "fig 8c: 40 comms, weight swept 100..3400", 40));
    // Figure 9 — sensitivity to the Manhattan length (§6.3).
    built.add(length_sweep("fig9a_numerous_small",
                           "fig 9a: 100 comms U[200,800), length 2..14", 100, 200.0,
                           800.0));
    built.add(length_sweep("fig9b_some_mixed",
                           "fig 9b: 25 comms U[100,3500), length 2..14", 25, 100.0,
                           3500.0));
    built.add(length_sweep("fig9c_few_big", "fig 9c: 12 comms U[2700,3300), length 2..14",
                           12, 2700.0, 3300.0));
    // Structured suites beyond the paper.
    built.add(permutation_sweep());
    built.add(transpose_ramp());
    built.add(hotspot_storm());
    built.add(multi_app_mix());
    built.add(mixed_background());
    built.add(uniform_burst());
    built.add(ablation_length_mix());
    // Workload layers beyond the generators: trace replay, open-loop
    // injection probes, mesh sweeps and placement modes.
    built.add(trace_replay());
    built.add(trace_burst());
    built.add(injection_sweep());
    built.add(injection_ramp());
    built.add(mesh_scaling());
    built.add(mesh_scaling_transpose());
    built.add(placement_modes());
    // Topology axis: same workloads, different interconnects.
    built.add(topology_compare());
    built.add(topology_scaling());
    return built;
  }();
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  PAMR_CHECK(!scenario.name.empty(), "scenario needs a name");
  PAMR_CHECK(find(scenario.name) == nullptr,
             "duplicate scenario '" + scenario.name + "'");
  PAMR_CHECK(!scenario.points.empty(),
             "scenario '" + scenario.name + "' has no points");
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const noexcept {
  for (const Scenario& scenario : scenarios_) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  const Scenario* scenario = find(name);
  PAMR_CHECK(scenario != nullptr, unknown_name_message(name));
  return *scenario;
}

namespace {

/// Classic dynamic-programming Levenshtein distance; the catalogue is a
/// handful of short names, so the O(|a|·|b|) table is irrelevant.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

std::string ScenarioRegistry::unknown_name_message(std::string_view name) const {
  std::string message = "unknown scenario '" + std::string(name) + "'";
  // Near misses: prefix matches (a truncated tab completion) and names
  // within a third of the query's length in edits (a typo).
  std::vector<std::pair<std::size_t, const std::string*>> ranked;
  const std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
  for (const Scenario& scenario : scenarios_) {
    const std::string& candidate = scenario.name;
    std::size_t rank;
    if (!name.empty() && (candidate.rfind(name, 0) == 0 ||
                          name.rfind(candidate, 0) == 0)) {
      rank = 0;  // prefix relation beats any edit distance
    } else {
      rank = edit_distance(name, candidate);
      if (rank > budget) continue;
    }
    ranked.emplace_back(rank, &candidate);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  if (!ranked.empty()) {
    message += " (did you mean ";
    const std::size_t shown = std::min<std::size_t>(ranked.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i > 0) message += i + 1 == shown ? " or " : ", ";
      message += "'" + *ranked[i].second + "'";
    }
    message += "?)";
  }
  message += "; available:";
  for (const Scenario& scenario : scenarios_) message += " " + scenario.name;
  return message;
}

}  // namespace scenario
}  // namespace pamr
