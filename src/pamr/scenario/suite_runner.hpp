// Sharded parallel execution of scenario suites.
//
// The runner flattens a scenario's (point × instance-chunk) grid into one
// work list and distributes it over the ThreadPool, so short points do not
// serialize behind long ones. Determinism is total: instance i of point p
// draws from Rng(derive_seed(seed, p, i)) — never from thread identity —
// and per-instance samples are folded into fixed-size chunk aggregates that
// are merged in chunk order afterwards, so the resulting PointAggregates
// are bit-identical for 1 thread and N threads. exp::run_point delegates
// here, which is what makes `pamr_scenarios --run fig7a_small` reproduce
// `bench/fig7_num_comms` number-for-number.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pamr/exp/campaign.hpp"
#include "pamr/exp/metrics.hpp"
#include "pamr/scenario/registry.hpp"
#include "pamr/scenario/work_list.hpp"
#include "pamr/util/csv.hpp"
#include "pamr/util/thread_pool.hpp"

namespace pamr {
namespace scenario {

struct SuiteOptions {
  std::int32_t instances = 300;  ///< instances per point (PAMR_TRIALS in the CLI)
  std::uint64_t seed = 0x9e3779b9ULL;
  std::size_t threads = 0;  ///< 0 = the global pool; else a dedicated pool
  /// Instances folded per work item. Fixed chunking (independent of the
  /// thread count) is what makes aggregates bit-identical across pools;
  /// 8 keeps a single default-trials point (300 instances) spread over
  /// ~38 items, enough for wide machines even without point flattening.
  std::size_t chunk = 8;

  /// Rejects options that would corrupt the sharding math (instances <= 0,
  /// chunk == 0, absurd thread counts) with a std::invalid_argument naming
  /// the offending field — like routing's check_comm_set, bad user input
  /// must fail loudly at the API boundary, not deep inside a parallel_for.
  /// Every execution entry point (SuiteRunner, pamr::dist) calls this.
  void validate() const;
};

/// Observes unit completion during a suite run. Called concurrently from
/// pool workers, in completion order (nondeterministic); the aggregate is
/// the unit's own partial, not a running total. Used to stream progress
/// rows (CsvStreamWriter) while a 50k-instance campaign is still running.
using UnitSink = std::function<void(const SuiteUnit&, const exp::PointAggregate&)>;

struct ScenarioPointResult {
  double x = 0.0;
  exp::PointAggregate aggregate;
};

struct ScenarioResult {
  std::string name;
  std::string x_label;
  std::vector<ScenarioPointResult> points;
  double elapsed_seconds = 0.0;
};

/// THE canonical fold: builds each entry's result skeleton and merges one
/// partial aggregate per unit, in unit-index order. Every execution path
/// that claims bit-identical output — SuiteRunner::run_all over its
/// parallel_for partials, dist::ResultMerger over deserialized worker
/// results — funnels through this single implementation, so they cannot
/// diverge. `partials[i]` belongs to `units[i]`.
[[nodiscard]] std::vector<ScenarioResult> fold_suite_units(
    const std::vector<SuiteEntry>& entries, const std::vector<SuiteUnit>& units,
    const std::vector<exp::PointAggregate>& partials);

/// The canonical `--spec` wrapper: a single-point scenario named "adhoc"
/// under the library default seed. `pamr_scenarios --spec`, `pamr_dist
/// --spec` and the differential test fixture all build ad-hoc runs through
/// this one helper, so their outputs stay byte-comparable by construction
/// instead of by parallel hand-rolled copies.
[[nodiscard]] Scenario adhoc_scenario(ScenarioSpec spec);

/// Runs every instance of one spec (the single-point kernel; exp::run_point
/// delegates here). `pool` may be null for the global pool.
[[nodiscard]] exp::PointAggregate run_scenario_point(
    const Mesh& mesh, const PowerModel& model, const ScenarioSpec& spec,
    std::int32_t instances, std::uint64_t seed, std::uint64_t point_id,
    ThreadPool* pool = nullptr, std::size_t chunk = 8);

class SuiteRunner {
 public:
  explicit SuiteRunner(SuiteOptions options = {});

  [[nodiscard]] const SuiteOptions& options() const noexcept { return options_; }

  /// Runs all points of one scenario, sharded over the pool as a single
  /// flattened work list. Equivalent to run_all with one entry seeded from
  /// options().seed.
  [[nodiscard]] ScenarioResult run(const Scenario& scenario) const;

  /// Runs a whole batch as ONE flattened work list — every (scenario,
  /// point, instance-chunk) unit of every entry lands in the same
  /// parallel_for, so short scenarios no longer serialize behind long ones
  /// at round boundaries. Unit aggregates merge in canonical unit order:
  /// each returned ScenarioResult is bit-identical to a standalone run()
  /// of that entry with the same seed, for any thread count. Every result
  /// reports the batch's wall time (execution is interleaved; per-scenario
  /// times would be fiction). `sink`, if set, observes unit completions.
  [[nodiscard]] std::vector<ScenarioResult> run_all(
      const std::vector<SuiteEntry>& entries, const UnitSink& sink = {}) const;

 private:
  SuiteOptions options_;
};

// -- Campaign bridge -------------------------------------------------------
//
// exp::WorkloadSpec predates the scenario subsystem and survives as the
// narrow paper-campaign view; these converters let exp::campaign and
// exp::panels run on the scenario engine while their declarative APIs (and
// the tests pinning the paper's parameters) stay put.

/// Wraps a campaign workload as a single-layer scenario on the paper's
/// platform (8×8, discrete links, flat envelope).
[[nodiscard]] ScenarioSpec spec_from_workload(const exp::WorkloadSpec& workload);

/// Inverse of spec_from_workload; CHECKs that the spec is such a
/// single-layer paper workload.
[[nodiscard]] exp::WorkloadSpec workload_from_spec(const ScenarioSpec& spec);

// -- Reporting -------------------------------------------------------------

/// Generic per-series table: one row per x, one column per series. The
/// extractor maps (aggregate, series) to the cell value. Shared by the
/// scenario CLI and exp::panels.
using SeriesExtractor = double (*)(const exp::PointAggregate&, std::size_t);
[[nodiscard]] Table series_table(const std::string& x_label,
                                 const std::vector<double>& xs,
                                 const std::vector<const exp::PointAggregate*>& points,
                                 SeriesExtractor extract);

[[nodiscard]] Table normalized_inverse_table(const ScenarioResult& result);
[[nodiscard]] Table failure_ratio_table(const ScenarioResult& result);

/// True iff any point carries simulation-probe aggregates (a sim=on spec
/// with at least one simulated instance). Decided from the aggregates
/// alone, so every execution path (in-process, distributed, resumed) makes
/// the same call — and writes the same files.
[[nodiscard]] bool has_sim_stats(const ScenarioResult& result);

/// Open-loop injection table: per point, the number of simulated instances
/// and the mean latency (cycles), delivery ratio and delivered throughput
/// (Mb/s). Meaningful only when has_sim_stats().
[[nodiscard]] Table sim_table(const ScenarioResult& result);

/// All tables as one JSON document (util/csv Table::to_json rows); the
/// "sim" member appears iff has_sim_stats().
[[nodiscard]] std::string result_to_json(const ScenarioResult& result);

/// Header / row of the live progress stream (one CsvStreamWriter row per
/// completed unit, in completion order): the unit's coordinates plus each
/// series' chunk-partial mean normalized inverse. Shared by
/// `pamr_scenarios --stream` and the pamr_dist coordinator so the two
/// streams are drop-in compatible for live plotting.
[[nodiscard]] std::vector<std::string> stream_csv_header();
[[nodiscard]] std::vector<Cell> stream_csv_row(const std::string& scenario, double x,
                                               const SuiteUnit& unit,
                                               const exp::PointAggregate& partial);

/// Prints both tables of one result to stdout (shared by the scenario CLI
/// and pamr_dist, so their human-readable reports match too).
void print_scenario_result(const ScenarioResult& result, std::int32_t instances);

/// Writes dir/<name>_{norm_inv_power,failure_ratio}.csv and, optionally,
/// dir/<name>.json. One shared implementation is what makes `pamr_dist`
/// output byte-identical to `pamr_scenarios --csv --json`. Returns false
/// (after logging) if any write failed.
bool write_scenario_outputs(const ScenarioResult& result, const std::string& dir,
                            bool write_csv, bool write_json);

/// Runs a scenario and prints both tables; optionally writes
/// output_directory()/<name>_{norm_inv_power,failure_ratio}.csv and
/// <name>.json.
void run_and_report(const Scenario& scenario, const SuiteOptions& options,
                    bool write_csv, bool write_json = false);

}  // namespace scenario
}  // namespace pamr
