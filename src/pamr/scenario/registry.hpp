// Named scenario catalogue.
//
// A Scenario is a sweep: an ordered list of (x, ScenarioSpec) points that
// the SuiteRunner executes with many instances each — one paper figure
// panel, one ablation, or one structured stress suite per entry. The
// built-in registry is the single source of truth for the §6 figure
// parameters (exp::panels derives its Panel definitions from it) plus the
// structured suites the paper never drew: permutation sweeps, hotspot
// storms, intensity ramps and multi-application mixes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pamr/scenario/scenario_spec.hpp"

namespace pamr {
namespace scenario {

struct ScenarioPoint {
  double x = 0.0;  ///< abscissa of the sweep (nc, weight, length, …)
  ScenarioSpec spec;
};

struct Scenario {
  std::string name;         ///< registry key, e.g. "fig7a_small"
  std::string description;  ///< one line for --list
  std::string x_label = "x";
  std::uint64_t default_seed = 0x9e3779b9ULL;  ///< figure suites pin the bench seed
  std::vector<ScenarioPoint> points;
};

class ScenarioRegistry {
 public:
  /// The built-in catalogue (immutable, constructed on first use).
  [[nodiscard]] static const ScenarioRegistry& builtin();

  /// Registration order is listing order. CHECKs name uniqueness.
  void add(Scenario scenario);

  [[nodiscard]] const Scenario* find(std::string_view name) const noexcept;

  /// find() that CHECKs the name exists — for callers holding a name that
  /// is supposed to be in the catalogue (benches, examples).
  [[nodiscard]] const Scenario& at(std::string_view name) const;

  /// Diagnostic for a failed lookup: "unknown scenario '<name>'", any
  /// near-miss suggestions (edit distance / prefix), and the full
  /// catalogue — every name-resolution error path (CLIs, at()) shares it,
  /// so a typo is always answered with what the user probably meant.
  [[nodiscard]] std::string unknown_name_message(std::string_view name) const;
  [[nodiscard]] const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace scenario
}  // namespace pamr
