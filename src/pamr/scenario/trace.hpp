// Trace replay: load a CommSet from CSV so recorded (or hand-written)
// workloads run through the same suite machinery as the synthetic
// generators.
//
// Schema (README "Workloads"): a header row `src_u,src_v,snk_u,snk_v,weight`
// followed by one communication per row — endpoints as mesh coordinates,
// weight in Mb/s. Weights are written with just enough significant digits
// to reparse to the identical IEEE-754 double, so
// read(write(comms)) == comms bit-for-bit: a dumped trace is a lossless
// archive of an instance, not an approximation of one (the property the
// trace round-trip tests pin).
//
// A `kind=trace` workload layer replays a trace per instance, optionally
// subsampling `sample=` communications with the instance's own RNG — the
// draw depends only on (seed, point, instance), never on threads or
// workers, so trace scenarios keep the suite's bit-identical determinism.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pamr/comm/communication.hpp"

namespace pamr {
namespace scenario {

/// Parses the trace CSV text form. On failure returns false and sets
/// `error` naming the offending line/field (leaving `out` untouched).
/// Structural validation only — endpoints are checked against a concrete
/// mesh later, by the layer that replays the trace.
[[nodiscard]] bool parse_trace_csv(std::string_view text, CommSet& out,
                                   std::string& error);

/// Reads and parses a trace file; `error` names the path on failure.
[[nodiscard]] bool read_trace_csv(const std::string& path, CommSet& out,
                                  std::string& error);

/// Canonical CSV text of a CommSet; parse_trace_csv round-trips it exactly
/// (weights are formatted with the shortest digit count that reparses to
/// the same bits).
[[nodiscard]] std::string trace_to_csv(const CommSet& comms);

/// Writes trace_to_csv() to `path`; returns false (after logging) on I/O
/// failure.
bool write_trace_csv(const CommSet& comms, const std::string& path);

/// Resolves a trace reference: absolute paths pass through; a relative path
/// is tried against $PAMR_TRACE_DIR first (when set and the file exists
/// there), then used as-is relative to the working directory.
[[nodiscard]] std::string resolve_trace_path(const std::string& path);

/// A loaded trace plus its bounding endpoint, precomputed so the per-
/// instance mesh-fit check is O(1) instead of O(|trace|).
struct Trace {
  CommSet comms;
  std::int32_t max_u = 0;  ///< largest endpoint coordinate, either axis
  std::int32_t max_v = 0;
  // CSV row (1-based, header = row 1) where each extreme first appears, so
  // a mesh-fit failure can name the offending line instead of just the
  // bound.
  std::int32_t max_u_row = 0;
  std::int32_t max_v_row = 0;
};

/// The replay loader: resolve_trace_path + read_trace_csv behind a
/// process-wide cache, so a 50k-instance campaign parses each trace once,
/// not once per instance. Throws std::runtime_error with the path and
/// parse diagnostic on failure. The returned reference lives for the
/// process; callers across pool workers may hold it concurrently.
[[nodiscard]] const Trace& load_trace(const std::string& path);

}  // namespace scenario
}  // namespace pamr
