#include "pamr/scenario/work_list.hpp"

#include <algorithm>
#include <memory>

#include "pamr/exp/instance_runner.hpp"
#include "pamr/obs/obs.hpp"
#include "pamr/util/assert.hpp"
#include "pamr/util/string_util.hpp"

namespace pamr {
namespace scenario {

bool resolve_suite_entries(const ScenarioRegistry& registry, std::string_view names,
                           std::int64_t seed, std::vector<SuiteEntry>& out,
                           std::string& error) {
  const auto entry_seed = [seed](const Scenario& scenario) {
    return seed >= 0 ? static_cast<std::uint64_t>(seed) : scenario.default_seed;
  };
  std::vector<SuiteEntry> entries;
  if (names == "all") {
    for (const Scenario& scenario : registry.scenarios()) {
      entries.push_back({&scenario, entry_seed(scenario)});
    }
  } else {
    for (const std::string& name : split(names, ',')) {
      const Scenario* scenario = registry.find(trim(name));
      if (scenario == nullptr) {
        error = registry.unknown_name_message(trim(name));
        return false;
      }
      entries.push_back({scenario, entry_seed(*scenario)});
    }
  }
  out = std::move(entries);
  error.clear();
  return true;
}

std::vector<SuiteUnit> enumerate_suite_units(const std::vector<SuiteEntry>& entries,
                                             std::int32_t instances, std::size_t chunk) {
  PAMR_CHECK(instances >= 1, "need at least one instance per point");
  PAMR_CHECK(chunk >= 1, "chunk must be positive");
  const auto count = static_cast<std::size_t>(instances);
  const std::size_t chunks_per_point = (count + chunk - 1) / chunk;

  std::vector<SuiteUnit> units;
  for (std::size_t s = 0; s < entries.size(); ++s) {
    PAMR_CHECK(entries[s].scenario != nullptr, "null scenario in suite batch");
    for (std::size_t p = 0; p < entries[s].scenario->points.size(); ++p) {
      for (std::size_t c = 0; c < chunks_per_point; ++c) {
        const std::size_t begin = c * chunk;
        units.push_back(SuiteUnit{s, p, begin, std::min(begin + chunk, count)});
      }
    }
  }
  return units;
}

exp::PointAggregate run_unit_instances(const Mesh& mesh, const PowerModel& model,
                                       const ScenarioSpec& spec, std::size_t begin,
                                       std::size_t end, std::size_t instances,
                                       std::uint64_t seed, std::uint64_t point_id) {
  PAMR_CHECK(begin <= end && end <= instances, "unit range out of bounds");
  PAMR_CHECK(!(spec.sim && spec.topo != topo::TopoKind::kRect),
             "sim=on needs topo=rect");
  obs::bump(obs::Metric::kSuiteUnits);
  obs::bump(obs::Metric::kSuiteInstances, end - begin);
  const obs::PhaseScope unit_phase(obs::Metric::kPhaseUnit);
  // Non-rect units route through the topology analogues. The topology is
  // built once per unit; workloads still draw on the mesh grid, so the
  // communication sets are identical across the topo= axis.
  std::unique_ptr<const topo::Topology> topology;
  if (spec.topo != topo::TopoKind::kRect) {
    topology = topo::make_topology(spec.topo, spec.mesh_p, spec.mesh_q);
  }
  exp::PointAggregate aggregate;
  for (std::size_t instance = begin; instance < end; ++instance) {
    Rng rng(derive_seed(seed, point_id, instance));
    // Envelope position: instance midpoints cover (0, 1) evenly.
    const double t =
        (static_cast<double>(instance) + 0.5) / static_cast<double>(instances);
    const CommSet comms = spec.generate(mesh, model, t, rng);
    if (topology != nullptr) {
      aggregate.add(exp::run_instance(*topology, comms, model));
    } else if (spec.sim) {
      // The probe's seed is the next draw of the instance stream — a pure
      // function of (seed, point, instance), like everything else here, so
      // sim aggregates stay bit-identical across threads and workers.
      sim::SimConfig sim_config;
      sim_config.cycles = spec.sim_cycles;
      sim_config.warmup = spec.sim_warmup;
      sim_config.seed = rng();
      aggregate.add(exp::run_instance(mesh, comms, model, &sim_config));
    } else {
      aggregate.add(exp::run_instance(mesh, comms, model));
    }
  }
  return aggregate;
}

}  // namespace scenario
}  // namespace pamr
