#include "pamr/scenario/trace.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "pamr/util/csv.hpp"
#include "pamr/util/log.hpp"
#include "pamr/util/string_util.hpp"

namespace pamr {
namespace scenario {

namespace {

constexpr const char* kHeader[] = {"src_u", "src_v", "snk_u", "snk_v", "weight"};
constexpr std::size_t kColumns = 5;

/// Shortest "%.g" rendering that reparses to the identical double. Most
/// weights are round decimals and stay human-readable (15 digits suffice);
/// adversarial doubles fall back to 17 digits, which round-trip by the
/// IEEE-754 shortest-representation guarantee. This — not Table's
/// fixed-precision formatting — is why a dumped trace reloads bit-exactly.
std::string format_exact(double value) {
  char buffer[32];
  for (const int digits : {15, 16, 17}) {
    std::snprintf(buffer, sizeof buffer, "%.*g", digits, value);
    double reparsed = 0.0;
    if (parse_double(buffer, reparsed) &&
        std::bit_cast<std::uint64_t>(reparsed) == std::bit_cast<std::uint64_t>(value)) {
      break;
    }
  }
  return buffer;
}

bool parse_coord_field(const std::string& cell, std::int32_t& out) {
  std::int64_t value = 0;
  if (!parse_int64(cell, value) || value < 0 || value > 1 << 20) return false;
  out = static_cast<std::int32_t>(value);
  return true;
}

}  // namespace

namespace {

/// Shared back half of the text and file readers: validated rows → comms.
bool rows_to_trace(const std::vector<std::vector<std::string>>& rows, CommSet& out,
                   std::string& error) {
  if (rows.empty()) {
    error = "empty trace (want a src_u,src_v,snk_u,snk_v,weight header)";
    return false;
  }
  const std::vector<std::string>& header = rows.front();
  if (header.size() != kColumns) {
    error = "trace header has " + std::to_string(header.size()) + " columns, want " +
            std::to_string(kColumns);
    return false;
  }
  for (std::size_t c = 0; c < kColumns; ++c) {
    if (trim(header[c]) != kHeader[c]) {
      error = "trace header column " + std::to_string(c + 1) + " is '" + header[c] +
              "', want '" + kHeader[c] + "'";
      return false;
    }
  }
  CommSet comms;
  comms.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& row = rows[r];
    const std::string where = "trace row " + std::to_string(r + 1);
    if (row.size() != kColumns) {
      error = where + " has " + std::to_string(row.size()) + " cells, want " +
              std::to_string(kColumns);
      return false;
    }
    Communication comm;
    if (!parse_coord_field(row[0], comm.src.u) || !parse_coord_field(row[1], comm.src.v) ||
        !parse_coord_field(row[2], comm.snk.u) || !parse_coord_field(row[3], comm.snk.v)) {
      error = where + ": bad endpoint (want non-negative integers)";
      return false;
    }
    if (!parse_double(row[4], comm.weight) || !std::isfinite(comm.weight) ||
        !(comm.weight > 0.0)) {
      error = where + ": bad weight '" + row[4] + "' (want a finite positive Mb/s)";
      return false;
    }
    if (comm.src == comm.snk) {
      error = where + ": src == snk (" + std::to_string(comm.src.u) + "," +
              std::to_string(comm.src.v) + ")";
      return false;
    }
    comms.push_back(comm);
  }
  if (comms.empty()) {
    error = "trace has a header but no communications";
    return false;
  }
  out = std::move(comms);
  error.clear();
  return true;
}

}  // namespace

bool parse_trace_csv(std::string_view text, CommSet& out, std::string& error) {
  std::vector<std::vector<std::string>> rows;
  return parse_csv(text, rows, error) && rows_to_trace(rows, out, error);
}

bool read_trace_csv(const std::string& path, CommSet& out, std::string& error) {
  std::vector<std::vector<std::string>> rows;
  // read_csv_file prefixes I/O and structural errors with the path already;
  // only the trace-schema diagnostics need it added.
  if (!read_csv_file(path, rows, error)) return false;
  if (!rows_to_trace(rows, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::string trace_to_csv(const CommSet& comms) {
  std::string out = "src_u,src_v,snk_u,snk_v,weight\n";
  for (const Communication& comm : comms) {
    out += std::to_string(comm.src.u) + ',' + std::to_string(comm.src.v) + ',' +
           std::to_string(comm.snk.u) + ',' + std::to_string(comm.snk.v) + ',' +
           format_exact(comm.weight) + '\n';
  }
  return out;
}

bool write_trace_csv(const CommSet& comms, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    PAMR_LOG_WARN("cannot open '" + path + "' for writing");
    return false;
  }
  file << trace_to_csv(comms);
  return static_cast<bool>(file);
}

std::string resolve_trace_path(const std::string& path) {
  if (!path.empty() && path.front() == '/') return path;
  if (const char* dir = std::getenv("PAMR_TRACE_DIR"); dir != nullptr && dir[0] != '\0') {
    const std::string candidate = std::string(dir) + "/" + path;
    std::error_code ec;
    if (std::filesystem::exists(candidate, ec)) return candidate;
  }
  return path;
}

const Trace& load_trace(const std::string& path) {
  static std::mutex mutex;
  static std::map<std::string, Trace> cache;  // keyed by the *unresolved* path
  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = cache.find(path); it != cache.end()) return it->second;
  Trace trace;
  std::string error;
  if (!read_trace_csv(resolve_trace_path(path), trace.comms, error)) {
    throw std::runtime_error("trace replay: " + error);
  }
  for (std::size_t i = 0; i < trace.comms.size(); ++i) {
    const Communication& comm = trace.comms[i];
    // Data row i sits on CSV row i + 2 (row 1 is the header) — the same
    // numbering as rows_to_trace's diagnostics.
    const auto row = static_cast<std::int32_t>(i) + 2;
    const std::int32_t u = std::max(comm.src.u, comm.snk.u);
    const std::int32_t v = std::max(comm.src.v, comm.snk.v);
    if (i == 0 || u > trace.max_u) {
      trace.max_u = u;
      trace.max_u_row = row;
    }
    if (i == 0 || v > trace.max_v) {
      trace.max_v = v;
      trace.max_v_row = row;
    }
  }
  return cache.emplace(path, std::move(trace)).first->second;
}

}  // namespace scenario
}  // namespace pamr
