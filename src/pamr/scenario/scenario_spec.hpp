// Declarative workload scenarios.
//
// A ScenarioSpec names everything needed to draw a problem instance: the
// mesh shape, the power model, and a *mix* of workload layers — the paper's
// uniform-random and fixed-length campaigns (§6), the classic permutation
// patterns, hotspot sets, and mapped multi-application task-graph mixes —
// each optionally shaped by a multi-phase intensity envelope. Layers
// compose: generate() concatenates every layer's communications, so "40
// uniform flows on top of a transpose permutation under a burst storm" is
// one spec, not a bespoke loop.
//
// Specs are plain data, compare by value, and round-trip through a
// `key=value` text form (sections separated by ';', first section global):
//
//   mesh=8x8 model=discrete ; kind=uniform n=40 lo=100 hi=1500
//   mesh=8x8 model=discrete ; kind=pattern pattern=transpose weight=700
//       envelope=ramp:0.2:5 ; kind=hotspots spots=2 n=24 lo=100 hi=1500
//   mesh=8x8 model=discrete sim=on cycles=4000 warmup=400
//       ; kind=trace file=traces/example_8x8.csv sample=16
//
// so a scenario can be printed, logged, diffed, stored in a registry, or
// passed on a command line — reproducibility from the printed parameters
// alone, like exp::WorkloadSpec before it, but for every workload the
// system knows how to draw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pamr/comm/communication.hpp"
#include "pamr/comm/task_graph.hpp"
#include "pamr/comm/traffic_pattern.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/scenario/envelope.hpp"
#include "pamr/topo/topology.hpp"
#include "pamr/util/rng.hpp"

namespace pamr {
namespace scenario {

/// One mapped application inside a `kind=apps` layer. Text form:
/// "pipeline:<stages>:<bw>", "forkjoin:<workers>:<bw>",
/// "stencil:<w>:<h>:<bw>".
struct AppSpec {
  enum class Shape { kPipeline, kForkJoin, kStencil };
  Shape shape = Shape::kPipeline;
  std::int32_t a = 1;        ///< stages / workers / stencil width
  std::int32_t b = 1;        ///< stencil height (unused otherwise)
  double bandwidth = 500.0;  ///< Mb/s per edge

  [[nodiscard]] TaskGraph build() const;
  [[nodiscard]] std::int32_t num_tasks() const noexcept;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const AppSpec&, const AppSpec&) = default;
};

struct WorkloadLayer {
  enum class Kind {
    kUniform,      ///< §6.1/§6.2: random endpoints, U[lo, hi) weights
    kFixedLength,  ///< §6.3: random endpoints at a fixed Manhattan distance
    kPattern,      ///< one classic permutation/hotspot TrafficPattern
    kHotspots,     ///< random senders converging on a random hotspot set
    kApps,         ///< mapped task-graph applications
    kTrace,        ///< replay a CommSet loaded from CSV (scenario/trace.hpp)
  };

  Kind kind = Kind::kUniform;

  // kUniform / kFixedLength / kHotspots ("n" in the text form)
  std::int32_t num_comms = 0;
  double weight_lo = 100.0;
  double weight_hi = 1500.0;
  std::int32_t length = 0;  ///< kFixedLength only

  // kPattern
  TrafficPattern pattern = TrafficPattern::kTranspose;
  double pattern_weight = 500.0;
  double jitter = 0.0;
  Coord hotspot{0, 0};  ///< TrafficPattern::kHotspot only

  // kHotspots
  std::int32_t num_hotspots = 1;  ///< distinct hotspot cores, drawn per instance

  // kApps. kOptimized searches the placement space per instance with
  // map::optimize_placement — placements judged by the routed power of the
  // spec's own model, which is why generate() takes the PowerModel.
  enum class Placement { kContiguous, kScattered, kOptimized };
  std::vector<AppSpec> apps;
  Placement placement = Placement::kContiguous;

  // kTrace ("file"/"sample" in the text form)
  std::string trace_file;       ///< CSV path (resolved via resolve_trace_path)
  std::int32_t trace_sample = 0;  ///< replay this many comms per instance; 0 = all

  IntensityEnvelope envelope;  ///< weight multiplier over the instance axis

  /// Draws this layer's communications at envelope position t, scaling
  /// weights by scale_at(t). A flat envelope leaves weights bit-identical
  /// to the underlying generator's draw. `model` is consulted only by
  /// placement-optimized apps layers (the placement objective).
  [[nodiscard]] CommSet generate(const Mesh& mesh, const PowerModel& model, double t,
                                 Rng& rng) const;

  friend bool operator==(const WorkloadLayer&, const WorkloadLayer&) = default;
};

struct ScenarioSpec {
  std::int32_t mesh_p = 8;
  std::int32_t mesh_q = 8;
  enum class ModelKind {
    kDiscrete,  ///< PowerModel::paper_discrete() — Kim–Horowitz links
    kTheory,    ///< PowerModel::theory() — continuous, Pleak = 0
  };
  ModelKind model = ModelKind::kDiscrete;

  // Interconnect topology ("topo" in the text form, global section).
  // Workload layers always draw endpoints on the p×q grid, so the same spec
  // (and seed) produces the *identical* communication set on every
  // topology — the axis varies only how it is routed. to_string() omits the
  // default, keeping rectangular spec text (and thus every existing output
  // file) byte-identical. sim=on and place=optimized remain rect-only.
  topo::TopoKind topo = topo::TopoKind::kRect;

  std::vector<WorkloadLayer> layers;

  // Open-loop injection probe ("sim"/"cycles"/"warmup" in the text form,
  // global section): when enabled, every instance additionally drives
  // sim::Simulator on its BEST routing — injection rates follow the drawn
  // (envelope-scaled) weights — and the point aggregates latency, delivery
  // ratio and delivered throughput next to power (exp::PointAggregate's
  // sim_* stats).
  bool sim = false;
  std::int64_t sim_cycles = 20000;  ///< total simulated cycles per instance
  std::int64_t sim_warmup = 2000;   ///< cycles excluded from measurement

  [[nodiscard]] Mesh make_mesh() const { return Mesh(mesh_p, mesh_q); }
  [[nodiscard]] PowerModel make_model() const;

  /// Concatenation of every layer's draw (layer order is spec order).
  [[nodiscard]] CommSet generate(const Mesh& mesh, const PowerModel& model, double t,
                                 Rng& rng) const;

  /// Canonical text form; parse(to_string()) reconstructs *this exactly.
  [[nodiscard]] std::string to_string() const;

  /// Parses the text form. On failure returns false and sets `error`
  /// (leaving `out` untouched).
  [[nodiscard]] static bool parse(std::string_view text, ScenarioSpec& out,
                                  std::string& error);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

}  // namespace scenario
}  // namespace pamr
