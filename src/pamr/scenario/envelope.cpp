#include "pamr/scenario/envelope.hpp"

#include <algorithm>
#include <cmath>

#include "pamr/util/assert.hpp"
#include "pamr/util/string_util.hpp"

namespace pamr {
namespace scenario {

IntensityEnvelope::IntensityEnvelope(std::vector<EnvelopePhase> phases)
    : phases_(std::move(phases)) {
  for (const EnvelopePhase& phase : phases_) {
    PAMR_CHECK(phase.a >= 0.0 && phase.b >= 0.0, "envelope scales must be >= 0");
    PAMR_CHECK(phase.duty >= 0.0 && phase.duty <= 1.0, "burst duty must be in [0, 1]");
  }
}

double IntensityEnvelope::scale_at(double t) const noexcept {
  if (phases_.empty()) return 1.0;
  t = std::clamp(t, 0.0, std::nextafter(1.0, 0.0));
  const auto count = static_cast<double>(phases_.size());
  const auto index = static_cast<std::size_t>(t * count);
  const double local = t * count - static_cast<double>(index);
  const EnvelopePhase& phase = phases_[index];
  switch (phase.kind) {
    case EnvelopePhase::Kind::kConst: return phase.a;
    case EnvelopePhase::Kind::kRamp: return phase.a + (phase.b - phase.a) * local;
    case EnvelopePhase::Kind::kBurst: return local < phase.duty ? phase.b : phase.a;
  }
  return 1.0;  // unreachable
}

std::string IntensityEnvelope::to_string() const {
  std::string out;
  for (const EnvelopePhase& phase : phases_) {
    if (!out.empty()) out += '/';
    switch (phase.kind) {
      case EnvelopePhase::Kind::kConst:
        out += "const:" + format_compact(phase.a);
        break;
      case EnvelopePhase::Kind::kRamp:
        out += "ramp:" + format_compact(phase.a) + ":" + format_compact(phase.b);
        break;
      case EnvelopePhase::Kind::kBurst:
        out += "burst:" + format_compact(phase.a) + ":" + format_compact(phase.b) +
               ":" + format_compact(phase.duty);
        break;
    }
  }
  return out;
}

bool IntensityEnvelope::parse(std::string_view text, IntensityEnvelope& out,
                              std::string& error) {
  std::vector<EnvelopePhase> phases;
  if (!trim(text).empty()) {
    for (const std::string& part : split(trim(text), '/')) {
      const std::vector<std::string> fields = split(part, ':');
      EnvelopePhase phase;
      auto number = [&](std::size_t i, double& value) {
        return parse_double(fields[i], value) && std::isfinite(value) && value >= 0.0;
      };
      bool ok = false;
      if (fields.size() == 2 && fields[0] == "const") {
        phase.kind = EnvelopePhase::Kind::kConst;
        ok = number(1, phase.a);
      } else if (fields.size() == 3 && fields[0] == "ramp") {
        phase.kind = EnvelopePhase::Kind::kRamp;
        ok = number(1, phase.a) && number(2, phase.b);
      } else if (fields.size() == 4 && fields[0] == "burst") {
        phase.kind = EnvelopePhase::Kind::kBurst;
        ok = number(1, phase.a) && number(2, phase.b) && number(3, phase.duty) &&
             phase.duty <= 1.0;
      }
      if (!ok) {
        error = "bad envelope phase '" + part +
                "' (want const:s, ramp:a:b or burst:base:peak:duty)";
        return false;
      }
      phases.push_back(phase);
    }
  }
  out = IntensityEnvelope(std::move(phases));
  return true;
}

IntensityEnvelope IntensityEnvelope::constant(double scale) {
  // Unused fields keep their defaults (b = 1, duty = 0.5), matching what
  // parse("const:s") builds — a const phase constructed here and one parsed
  // from its own to_string() must compare equal, or specs only differ in
  // dead state and every value-equality round-trip test trips.
  return IntensityEnvelope({{EnvelopePhase::Kind::kConst, scale, 1.0, 0.5}});
}

IntensityEnvelope IntensityEnvelope::ramp(double from, double to) {
  return IntensityEnvelope({{EnvelopePhase::Kind::kRamp, from, to, 0.5}});
}

IntensityEnvelope IntensityEnvelope::burst(double base, double peak, double duty) {
  return IntensityEnvelope({{EnvelopePhase::Kind::kBurst, base, peak, duty}});
}

}  // namespace scenario
}  // namespace pamr
