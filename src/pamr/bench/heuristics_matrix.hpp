// The micro-heuristics measurement matrix, shared by bench/micro_heuristics
// (google-benchmark timings) and tools/pamr_bench_export (the BENCH_4.json
// perf-trajectory export) so the two can never drift apart: same meshes,
// same comm counts, same router sets, same generator seed and weight range
// — a benchmark name and an export row with matching (mesh, nc, router) are
// directly comparable.
//
// Every policy (and BEST) runs at every mesh: the incremental XYI rewrite
// made the last seconds-per-call holdout sub-second on the scaled meshes,
// so route16/route32 now cover the full portfolio. Rows whose workload
// exceeds the model's max frequency export as "valid": false, "power": 0 —
// a model-infeasible point, not a harness failure.
#pragma once

#include <cstdint>
#include <vector>

#include "pamr/comm/generator.hpp"
#include "pamr/routing/routers.hpp"

namespace pamr::bench {

inline constexpr std::uint64_t kWorkloadSeed = 0xBEEF;
inline constexpr double kWeightLo = 100.0;
inline constexpr double kWeightHi = 1500.0;

struct MeshCase {
  const char* prefix;  ///< benchmark name prefix ("route", "route16", …)
  std::int32_t p = 0;
  std::int32_t q = 0;
  std::vector<RouterKind> kinds;
  std::vector<std::int32_t> num_comms;
};

inline std::vector<MeshCase> heuristics_matrix() {
  const std::vector<RouterKind> all = {
      RouterKind::kXY,  RouterKind::kSG, RouterKind::kIG,  RouterKind::kTB,
      RouterKind::kXYI, RouterKind::kPR, RouterKind::kBest};
  return {
      {"route", 8, 8, all, {20, 50, 100}},
      {"route16", 16, 16, all, {100, 500}},
      {"route32", 32, 32, all, {500, 2000}},
  };
}

inline CommSet heuristics_workload(const Mesh& mesh, std::int32_t num_comms) {
  Rng rng(kWorkloadSeed);
  UniformWorkload spec;
  spec.num_comms = num_comms;
  spec.weight_lo = kWeightLo;
  spec.weight_hi = kWeightHi;
  return generate_uniform(mesh, spec, rng);
}

}  // namespace pamr::bench
