// The micro-heuristics measurement matrix, shared by bench/micro_heuristics
// (google-benchmark timings) and tools/pamr_bench_export (the BENCH_2.json
// perf-trajectory export) so the two can never drift apart: same meshes,
// same comm counts, same router sets, same generator seed and weight range
// — a benchmark name and an export row with matching (mesh, nc, router) are
// directly comparable.
//
// XYI — and BEST, which runs it — is excluded from the scaled meshes: its
// local search is seconds-per-call at 16×16 and beyond, which would make
// the CI bench smoke step minutes long without measuring anything new.
#pragma once

#include <cstdint>
#include <vector>

#include "pamr/comm/generator.hpp"
#include "pamr/routing/routers.hpp"

namespace pamr::bench {

inline constexpr std::uint64_t kWorkloadSeed = 0xBEEF;
inline constexpr double kWeightLo = 100.0;
inline constexpr double kWeightHi = 1500.0;

struct MeshCase {
  const char* prefix;  ///< benchmark name prefix ("route", "route16", …)
  std::int32_t p = 0;
  std::int32_t q = 0;
  std::vector<RouterKind> kinds;
  std::vector<std::int32_t> num_comms;
};

inline std::vector<MeshCase> heuristics_matrix() {
  const std::vector<RouterKind> all = {
      RouterKind::kXY,  RouterKind::kSG, RouterKind::kIG,  RouterKind::kTB,
      RouterKind::kXYI, RouterKind::kPR, RouterKind::kBest};
  const std::vector<RouterKind> scaled = {RouterKind::kXY, RouterKind::kSG,
                                          RouterKind::kIG, RouterKind::kTB,
                                          RouterKind::kPR};
  return {
      {"route", 8, 8, all, {20, 50, 100}},
      {"route16", 16, 16, scaled, {100, 500}},
      {"route32", 32, 32, scaled, {500, 2000}},
  };
}

inline CommSet heuristics_workload(const Mesh& mesh, std::int32_t num_comms) {
  Rng rng(kWorkloadSeed);
  UniformWorkload spec;
  spec.num_comms = num_comms;
  spec.weight_lo = kWeightLo;
  spec.weight_hi = kWeightHi;
  return generate_uniform(mesh, spec, rng);
}

}  // namespace pamr::bench
