#include "pamr/opt/path_enum.hpp"

#include <limits>
#include <unordered_map>

#include "pamr/util/assert.hpp"

namespace pamr {

std::uint64_t count_manhattan_paths(std::int32_t du, std::int32_t dv) noexcept {
  // C(du+dv, min) with overflow saturation.
  const std::uint64_t n = static_cast<std::uint64_t>(du) + static_cast<std::uint64_t>(dv);
  const std::uint64_t k = static_cast<std::uint64_t>(du < dv ? du : dv);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t numerator = n - k + i;
    // result * numerator may overflow; detect via division.
    if (result > std::numeric_limits<std::uint64_t>::max() / numerator) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

namespace {

void enumerate_recursive(const CommRect& rect, Coord at, std::vector<Coord>& prefix,
                         std::vector<Path>& out) {
  if (at == rect.snk()) {
    out.push_back(path_from_cores(rect.mesh(), prefix));
    return;
  }
  for (const CommRect::Step& step : rect.next_steps(at)) {
    prefix.push_back(step.to);
    enumerate_recursive(rect, step.to, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<Path> enumerate_manhattan_paths(const CommRect& rect, std::uint64_t limit) {
  const std::uint64_t count = count_manhattan_paths(rect.du(), rect.dv());
  PAMR_CHECK(count <= limit, "path enumeration would produce " + std::to_string(count) +
                                 " paths (limit " + std::to_string(limit) + ")");
  std::vector<Path> out;
  out.reserve(static_cast<std::size_t>(count));
  std::vector<Coord> prefix{rect.src()};
  enumerate_recursive(rect, rect.src(), prefix, out);
  PAMR_ASSERT(out.size() == count);
  return out;
}

Path min_cost_manhattan_path(const CommRect& rect, const LinkCostFn& cost) {
  const Mesh& mesh = rect.mesh();
  // value[cell] = min cost from cell to snk; choice[cell] = best next step.
  // Cells are keyed by core index; only rectangle cells are touched.
  std::unordered_map<std::int32_t, double> value;
  std::unordered_map<std::int32_t, CommRect::Step> choice;
  value[mesh.core_index(rect.snk())] = 0.0;

  for (std::int32_t t = rect.length() - 1; t >= 0; --t) {
    for (const Coord cell : rect.cells_at_depth(t)) {
      double best = std::numeric_limits<double>::infinity();
      CommRect::Step best_step;
      for (const CommRect::Step& step : rect.next_steps(cell)) {
        const auto it = value.find(mesh.core_index(step.to));
        PAMR_ASSERT(it != value.end());
        const double total = cost(step.link) + it->second;
        // Strict '<': next_steps lists the vertical step first, so exact
        // ties resolve to it deterministically.
        if (total < best) {
          best = total;
          best_step = step;
        }
      }
      value[mesh.core_index(cell)] = best;
      choice[mesh.core_index(cell)] = best_step;
    }
  }

  Path path;
  path.src = rect.src();
  path.snk = rect.snk();
  Coord at = rect.src();
  while (at != rect.snk()) {
    const CommRect::Step& step = choice.at(mesh.core_index(at));
    path.links.push_back(step.link);
    at = step.to;
  }
  return path;
}

}  // namespace pamr
