// Exact 1-MP solver by branch-and-bound (the paper's future-work item:
// "compute the optimal solution for small problem instances, so that we
// could give an insight on the absolute performance of our heuristics").
//
// Search space: one Manhattan path per communication, enumerated per
// rectangle (Lemma 1 counts them; the solver refuses instances whose
// per-communication path count exceeds a limit). Communications are
// explored heaviest-first.
//
// Bounding: the power of the committed loads is monotone non-decreasing in
// every link load (convex dynamic curve, upward quantization, additive
// leakage), so the partial power is admissible; the unrouted remainder is
// bounded by Σ ℓ_i · Pdyn_cont(δ_i) — every path of γ_i uses ℓ_i links each
// carrying at least δ_i of fresh traffic, and the continuous dynamic curve
// is superadditive (f convex, f(0)=0 ⇒ f(a+b) ≥ f(a)+f(b)) so fresh traffic
// costs at least its isolated dynamic power. An infeasible partial load is
// pruned outright (loads only grow).
#pragma once

#include <cstdint>
#include <optional>

#include "pamr/comm/communication.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/routing.hpp"

namespace pamr {

struct ExactOptions {
  std::uint64_t max_paths_per_comm = 20000;  ///< enumeration guard
  std::uint64_t max_nodes = 50'000'000;      ///< search-size guard
};

struct ExactResult {
  std::optional<Routing> routing;  ///< nullopt if no feasible 1-MP routing exists
  double power = 0.0;              ///< optimal power, defined iff routing
  std::uint64_t nodes = 0;         ///< explored search nodes
  bool complete = false;           ///< search ran to proof (not node-capped)
};

[[nodiscard]] ExactResult solve_exact_1mp(const Mesh& mesh, const CommSet& comms,
                                          const PowerModel& model,
                                          const ExactOptions& options = {});

}  // namespace pamr
