#include "pamr/opt/frank_wolfe.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "pamr/mesh/rectangle.hpp"
#include "pamr/opt/path_enum.hpp"
#include "pamr/routing/link_loads.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

namespace {

/// Sparse per-communication flow: path (by link chain) → carried weight.
using CommFlow = std::map<std::vector<LinkId>, double>;

std::vector<double> loads_of_flows(const Mesh& mesh, const std::vector<CommFlow>& flows) {
  std::vector<double> loads(static_cast<std::size_t>(mesh.num_links()), 0.0);
  for (const CommFlow& flow : flows) {
    for (const auto& [links, weight] : flow) {
      for (const LinkId link : links) loads[static_cast<std::size_t>(link)] += weight;
    }
  }
  return loads;
}

double dynamic_power(const std::vector<double>& loads, const PowerParams& params) {
  double sum = 0.0;
  for (const double load : loads) {
    if (load > 0.0) sum += params.p0 * std::pow(load * params.load_unit, params.alpha);
  }
  return sum;
}

}  // namespace

FrankWolfeResult solve_max_mp(const Mesh& mesh, const CommSet& comms,
                              const PowerModel& model, const FrankWolfeOptions& options) {
  PAMR_CHECK(options.max_iterations >= 1, "need at least one iteration");
  const PowerParams& params = model.params();

  std::vector<CommRect> rects;
  rects.reserve(comms.size());
  std::vector<CommFlow> flows(comms.size());
  for (std::size_t i = 0; i < comms.size(); ++i) {
    rects.emplace_back(mesh, comms[i].src, comms[i].snk);
    flows[i][xy_path(mesh, comms[i].src, comms[i].snk).links] = comms[i].weight;
  }

  FrankWolfeResult result;
  double best_lb = 0.0;
  std::vector<double> marginal(static_cast<std::size_t>(mesh.num_links()), 0.0);

  std::int32_t iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    const std::vector<double> loads = loads_of_flows(mesh, flows);
    const double objective = dynamic_power(loads, params);

    // ∇F: marginal cost of one more unit of load on each link.
    for (std::size_t l = 0; l < loads.size(); ++l) {
      marginal[l] = params.p0 * params.alpha * params.load_unit *
                    std::pow(loads[l] * params.load_unit, params.alpha - 1.0);
    }

    // Linearized subproblem: per commodity, cheapest Manhattan path under
    // the marginal costs.
    double grad_dot_y = 0.0;
    double grad_dot_x = 0.0;
    for (std::size_t l = 0; l < loads.size(); ++l) grad_dot_x += marginal[l] * loads[l];
    std::vector<Path> targets;
    targets.reserve(comms.size());
    for (std::size_t i = 0; i < comms.size(); ++i) {
      Path target = min_cost_manhattan_path(
          rects[i], [&](LinkId link) { return marginal[static_cast<std::size_t>(link)]; });
      double path_cost = 0.0;
      for (const LinkId link : target.links) {
        path_cost += marginal[static_cast<std::size_t>(link)];
      }
      grad_dot_y += path_cost * comms[i].weight;
      targets.push_back(std::move(target));
    }

    // FW minorant: F(x) + ∇F(x)ᵀ(y − x) lower-bounds the optimum.
    best_lb = std::max(best_lb, objective + grad_dot_y - grad_dot_x);
    const double gap = objective - best_lb;
    if (gap <= options.relative_gap * std::max(objective, 1e-30)) {
      result.converged = true;
      break;
    }

    const double gamma = 2.0 / static_cast<double>(iteration + 2);
    for (std::size_t i = 0; i < comms.size(); ++i) {
      for (auto& [links, weight] : flows[i]) weight *= 1.0 - gamma;
      flows[i][targets[i].links] += gamma * comms[i].weight;
    }
  }

  // Extract the routing: drop ε-paths, renormalize to exactly δ_i.
  result.iterations = iteration;
  result.routing.per_comm.resize(comms.size());
  for (std::size_t i = 0; i < comms.size(); ++i) {
    CommRouting& routed = result.routing.per_comm[i];
    const double threshold = options.min_flow_fraction * comms[i].weight;
    double kept = 0.0;
    for (const auto& [links, weight] : flows[i]) {
      if (weight < threshold) continue;
      Path path;
      path.src = comms[i].src;
      path.snk = comms[i].snk;
      path.links = links;
      routed.flows.push_back(RoutedFlow{std::move(path), weight});
      kept += weight;
    }
    PAMR_ASSERT_MSG(kept > 0.0, "all flow paths fell below the drop threshold");
    const double scale = comms[i].weight / kept;
    for (RoutedFlow& flow : routed.flows) flow.weight *= scale;
  }

  const LinkLoads final_loads = loads_of_routing(mesh, result.routing);
  std::vector<double> dense(final_loads.values().begin(), final_loads.values().end());
  result.objective = dynamic_power(dense, params);
  result.lower_bound = std::min(best_lb, result.objective);
  return result;
}

}  // namespace pamr
