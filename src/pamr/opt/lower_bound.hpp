// Diagonal-cut lower bound on the dynamic power of any Manhattan routing
// (the device behind the proofs of Theorems 1 and 2).
//
// Every direction-d communication crosses every diagonal cut between its
// source and sink diagonals exactly once, so the cut k of direction d must
// carry K(d,k) = Σ { δ_i : d_i = d, k_src(i) ≤ k < k_snk(i) } in total.
// With a convex dynamic power curve the cheapest conceivable arrangement
// spreads K(d,k) uniformly over the m(k) links of the cut, giving
//     P(d,k) ≥ m(k) · Pdyn(K(d,k) / m(k)).
// Summing cuts within one direction bounds that direction's traffic, and
// (by convexity, as in the proof of Theorem 2) the sum over the four
// directions bounds the whole routing's dynamic power under the
// *continuous* frequency model. Quantization and leakage only increase
// power, so the bound also holds for the discrete model's dynamic part.
#pragma once

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/diagonal.hpp"
#include "pamr/power/power_model.hpp"

namespace pamr {

struct DiagonalBound {
  double total = 0.0;            ///< Σ over the four directions
  double per_direction[4] = {};  ///< indexed by Quadrant
};

/// K(d,k) for one direction: per-cut traffic totals (size p+q-2, cut k
/// separates diagonals k and k+1).
[[nodiscard]] std::vector<double> direction_cut_traffic(const Mesh& mesh,
                                                        const CommSet& comms,
                                                        Quadrant direction);

/// The bound described above. Uses the model's continuous dynamic curve
/// (P0, α, load_unit); p_leak and the frequency table are ignored.
[[nodiscard]] DiagonalBound diagonal_lower_bound(const Mesh& mesh, const CommSet& comms,
                                                 const PowerModel& model);

}  // namespace pamr
