#include "pamr/opt/exact_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "pamr/mesh/rectangle.hpp"
#include "pamr/opt/path_enum.hpp"
#include "pamr/routing/link_loads.hpp"
#include "pamr/routing/routers.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

namespace {

struct SearchState {
  const Mesh* mesh;
  const PowerModel* model;
  const ExactOptions* options;
  const CommSet* comms;
  std::vector<std::size_t> order;              ///< heaviest-first comm indices
  std::vector<std::vector<Path>> paths;        ///< per order position
  std::vector<double> tail_bound;              ///< LB on comms from position k on
  LinkLoads loads;
  std::vector<const Path*> chosen;
  double best_power = std::numeric_limits<double>::infinity();
  std::vector<const Path*> best_choice;
  std::uint64_t nodes = 0;
  bool capped = false;

  explicit SearchState(const Mesh& m) : loads(m) {}

  /// Power of the committed loads; +inf when infeasible (prunes the branch:
  /// loads only grow deeper in the tree).
  [[nodiscard]] double committed_power() const {
    const auto power = model->total_power(loads.values());
    return power.has_value() ? *power : std::numeric_limits<double>::infinity();
  }

  void dfs(std::size_t position) {
    if (capped) return;
    if (++nodes > options->max_nodes) {
      capped = true;
      return;
    }
    const double committed = committed_power();
    if (committed + tail_bound[position] >= best_power) return;
    if (position == order.size()) {
      best_power = committed;
      best_choice = chosen;
      return;
    }
    const double weight = (*comms)[order[position]].weight;
    for (const Path& path : paths[position]) {
      loads.add_path(path, weight);
      chosen[position] = &path;
      dfs(position + 1);
      loads.add_path(path, -weight);
    }
    chosen[position] = nullptr;
  }
};

}  // namespace

ExactResult solve_exact_1mp(const Mesh& mesh, const CommSet& comms,
                            const PowerModel& model, const ExactOptions& options) {
  SearchState state(mesh);
  state.mesh = &mesh;
  state.model = &model;
  state.options = &options;
  state.comms = &comms;
  state.order = order_by_decreasing_weight(comms);

  const PowerParams& params = model.params();
  state.paths.reserve(comms.size());
  for (const std::size_t index : state.order) {
    const CommRect rect(mesh, comms[index].src, comms[index].snk);
    PAMR_CHECK(count_manhattan_paths(rect.du(), rect.dv()) <= options.max_paths_per_comm,
               "instance too large for exact enumeration: " + to_string(comms[index]));
    state.paths.push_back(enumerate_manhattan_paths(rect, options.max_paths_per_comm));
  }

  // tail_bound[k] = Σ_{j ≥ k} ℓ_j · Pdyn_cont(δ_j)  (see header).
  state.tail_bound.assign(comms.size() + 1, 0.0);
  for (std::size_t k = comms.size(); k-- > 0;) {
    const Communication& comm = comms[state.order[k]];
    const double length = static_cast<double>(manhattan_distance(comm.src, comm.snk));
    const double isolated =
        params.p0 * std::pow(comm.weight * params.load_unit, params.alpha);
    state.tail_bound[k] = state.tail_bound[k + 1] + length * isolated;
  }

  // Warm start with BEST: any valid heuristic power is an upper bound. The
  // margin covers float drift from the DFS's add/remove load accounting; if
  // the search never beats it, the warm solution is returned as optimal
  // (within that margin).
  RouteResult warm = BestRouter().route(mesh, comms, model);
  if (warm.valid) {
    state.best_power = warm.power * (1.0 + 1e-9) + 1e-9;
  }

  state.chosen.assign(comms.size(), nullptr);
  state.dfs(0);

  ExactResult result;
  result.nodes = state.nodes;
  result.complete = !state.capped;
  if (!state.best_choice.empty() &&
      std::all_of(state.best_choice.begin(), state.best_choice.end(),
                  [](const Path* path) { return path != nullptr; })) {
    std::vector<Path> final_paths(comms.size());
    for (std::size_t k = 0; k < comms.size(); ++k) {
      final_paths[state.order[k]] = *state.best_choice[k];
    }
    result.routing = make_single_path_routing(comms, std::move(final_paths));
    const LinkLoads final_loads = loads_of_routing(mesh, *result.routing);
    const auto power = model.total_power(final_loads.values());
    PAMR_ASSERT(power.has_value());
    result.power = *power;
  } else if (warm.valid) {
    // Either node-capped, or the complete search found nothing strictly
    // better than the heuristic incumbent — in which case the incumbent is
    // the optimum (within the pruning margin).
    result.routing = std::move(warm.routing);
    result.power = warm.power;
  }
  return result;
}

}  // namespace pamr
