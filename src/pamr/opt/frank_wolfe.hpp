// Frank–Wolfe optimizer for the splittable (max-MP) routing relaxation.
//
// Relaxation solved:   min  F(x) = Σ_links P0 · (load_ℓ(x) · unit)^α
// over all fractional multi-commodity flows x where commodity i ships δ_i
// through its Manhattan rectangle DAG. F is convex (α > 1) and the feasible
// set is a product of path polytopes, so Frank–Wolfe applies directly: the
// linearized subproblem decomposes into one shortest-path computation per
// commodity under marginal link costs F'(load) = P0·α·unit·(load·unit)^(α-1),
// solved exactly by DP on the rectangle DAG.
//
// What the result means w.r.t. the paper:
//  * `lower_bound` is a certified lower bound on the dynamic power of EVERY
//    max-MP routing under the continuous model (standard FW minorant
//    F(x_k) + ∇F(x_k)ᵀ(y_k − x_k)), hence also on every s-MP and 1-MP
//    routing — the paper's "bound on the optimal solution" future-work item.
//  * `routing` is an explicit multi-path routing whose dynamic power is
//    `objective`; the number of paths per communication is at most the
//    iteration count (Carathéodory would give fewer; we simply merge
//    duplicates and drop ε-flows).
//
// Leakage and frequency quantization are deliberately outside the scope of
// the relaxation (leakage makes the objective non-convex in the active-link
// indicator); callers evaluate the returned routing under the full model
// when they need the paper's §6 objective.
#pragma once

#include <cstdint>

#include "pamr/comm/communication.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/routing.hpp"

namespace pamr {

struct FrankWolfeOptions {
  std::int32_t max_iterations = 200;
  double relative_gap = 1e-4;       ///< stop when (F - LB)/max(F,ε) drops below
  double min_flow_fraction = 1e-6;  ///< drop paths carrying less than this × δ
};

struct FrankWolfeResult {
  Routing routing;           ///< fractional multi-path routing (max-MP)
  double objective = 0.0;    ///< dynamic power of `routing` (continuous model)
  double lower_bound = 0.0;  ///< certified LB on the optimal dynamic power
  std::int32_t iterations = 0;
  bool converged = false;    ///< relative_gap reached before max_iterations
};

[[nodiscard]] FrankWolfeResult solve_max_mp(const Mesh& mesh, const CommSet& comms,
                                            const PowerModel& model,
                                            const FrankWolfeOptions& options = {});

}  // namespace pamr
