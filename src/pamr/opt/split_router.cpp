#include "pamr/opt/split_router.hpp"

#include <map>

#include "pamr/mesh/rectangle.hpp"
#include "pamr/opt/path_enum.hpp"
#include "pamr/routing/link_loads.hpp"
#include "pamr/util/assert.hpp"
#include "pamr/util/timer.hpp"

namespace pamr {

SplitRouteResult route_split(const Mesh& mesh, const CommSet& comms,
                             const PowerModel& model, std::int32_t max_paths) {
  PAMR_CHECK(max_paths >= 1, "s must be at least 1");
  const WallTimer timer;
  const LoadCost cost(model);
  LinkLoads loads(mesh);

  SplitRouteResult result;
  result.routing.per_comm.resize(comms.size());

  for (const std::size_t index : order_by_decreasing_weight(comms)) {
    const Communication& comm = comms[index];
    const CommRect rect(mesh, comm.src, comm.snk);
    const double part = comm.weight / static_cast<double>(max_paths);

    std::map<std::vector<LinkId>, double> merged;
    for (std::int32_t j = 0; j < max_paths; ++j) {
      const Path path = min_cost_manhattan_path(rect, [&](LinkId link) {
        return cost.delta(loads.load(link), loads.load(link) + part);
      });
      loads.add_path(path, part);
      merged[path.links] += part;
    }

    CommRouting& routed = result.routing.per_comm[index];
    for (const auto& [links, weight] : merged) {
      Path path;
      path.src = comm.src;
      path.snk = comm.snk;
      path.links = links;
      routed.flows.push_back(RoutedFlow{std::move(path), weight});
    }
  }

  result.elapsed_ms = timer.elapsed_ms();
  const ValidationResult check = validate_routing(
      mesh, comms, result.routing, model, static_cast<std::size_t>(max_paths));
  if (check.ok) {
    const LinkLoads final_loads = loads_of_routing(mesh, result.routing);
    if (const auto breakdown = model.breakdown(final_loads.values());
        breakdown.has_value()) {
      result.valid = true;
      result.power = breakdown->total;
      result.breakdown = *breakdown;
    }
  }
  return result;
}

}  // namespace pamr
