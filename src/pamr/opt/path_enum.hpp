// Manhattan path enumeration and minimum-cost path extraction on a
// communication's rectangle DAG.
//
// Lemma 1: there are C(du+dv, du) Manhattan paths between opposite corners
// of a (du+1)×(dv+1) rectangle. Enumeration is exponential in the rectangle
// size and is used only by the exact solver and tests; the DP extractor is
// linear in the rectangle and shared by the Frank–Wolfe optimizer and the
// s-MP splitter.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pamr/mesh/rectangle.hpp"
#include "pamr/routing/path.hpp"

namespace pamr {

/// Number of Manhattan paths of the rectangle (C(du+dv, du)), saturating at
/// std::uint64_t max; exact for every mesh this library can represent.
[[nodiscard]] std::uint64_t count_manhattan_paths(std::int32_t du, std::int32_t dv) noexcept;

/// All Manhattan paths from rect.src() to rect.snk(), in lexicographic order
/// of step choices (vertical before horizontal). CHECKs that the count does
/// not exceed `limit` (guards against accidental exponential blow-ups).
[[nodiscard]] std::vector<Path> enumerate_manhattan_paths(const CommRect& rect,
                                                          std::uint64_t limit = 1u << 20);

/// Additive per-link cost oracle for path extraction.
using LinkCostFn = std::function<double(LinkId)>;

/// Minimum-total-cost Manhattan path by dynamic programming over the
/// rectangle's depth levels; O(cells) evaluations. Ties prefer the vertical
/// step (deterministic).
[[nodiscard]] Path min_cost_manhattan_path(const CommRect& rect, const LinkCostFn& cost);

}  // namespace pamr
