#include "pamr/opt/lower_bound.hpp"

#include <cmath>

#include "pamr/util/assert.hpp"

namespace pamr {

std::vector<double> direction_cut_traffic(const Mesh& mesh, const CommSet& comms,
                                          Quadrant direction) {
  const std::size_t num_cuts = static_cast<std::size_t>(mesh.p() + mesh.q() - 2);
  std::vector<double> traffic(num_cuts, 0.0);
  for (const Communication& comm : comms) {
    if (quadrant_of(comm.src, comm.snk) != direction) continue;
    const std::int32_t k_src = diagonal_index(mesh, direction, comm.src);
    const std::int32_t k_snk = diagonal_index(mesh, direction, comm.snk);
    PAMR_ASSERT(k_snk >= k_src);
    for (std::int32_t k = k_src; k < k_snk; ++k) {
      traffic[static_cast<std::size_t>(k)] += comm.weight;
    }
  }
  return traffic;
}

DiagonalBound diagonal_lower_bound(const Mesh& mesh, const CommSet& comms,
                                   const PowerModel& model) {
  const PowerParams& params = model.params();
  DiagonalBound bound;
  for (int d = 0; d < kNumQuadrants; ++d) {
    const auto direction = static_cast<Quadrant>(d);
    const std::vector<double> traffic = direction_cut_traffic(mesh, comms, direction);
    double sum = 0.0;
    for (std::size_t k = 0; k < traffic.size(); ++k) {
      if (traffic[k] <= 0.0) continue;
      const std::int32_t m =
          diagonal_cut_size(mesh, direction, static_cast<std::int32_t>(k));
      PAMR_ASSERT(m > 0);
      const double per_link = traffic[k] / static_cast<double>(m);
      sum += static_cast<double>(m) * params.p0 *
             std::pow(per_link * params.load_unit, params.alpha);
    }
    bound.per_direction[d] = sum;
    bound.total += sum;
  }
  return bound;
}

}  // namespace pamr
