// Greedy s-MP splitting heuristic (the paper's concluding future-work item:
// "it may be interesting to design multi-path heuristics, since these may
// allow for an even better load-balance").
//
// Each communication (heaviest first) is split into s equal parts; each
// part is routed on the minimum-cost-delta Manhattan path given the loads
// accumulated so far (exact per-part optimum by DP — path costs are
// additive over distinct links). Parts that end up on the same path are
// merged, so a communication uses at most s distinct paths.
#pragma once

#include <cstdint>

#include "pamr/comm/communication.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/routing.hpp"
#include "pamr/routing/validate.hpp"

namespace pamr {

struct SplitRouteResult {
  Routing routing;
  bool valid = false;
  double power = 0.0;       ///< defined iff valid
  PowerBreakdown breakdown; ///< defined iff valid
  double elapsed_ms = 0.0;
};

/// `max_paths` is the rule's s ≥ 1. s = 1 degenerates to a DP-based
/// single-path greedy (a useful baseline in its own right).
[[nodiscard]] SplitRouteResult route_split(const Mesh& mesh, const CommSet& comms,
                                           const PowerModel& model,
                                           std::int32_t max_paths);

}  // namespace pamr
