#include "pamr/comm/traffic_pattern.hpp"

#include <bit>

#include "pamr/util/assert.hpp"

namespace pamr {

const char* to_cstring(TrafficPattern pattern) noexcept {
  switch (pattern) {
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitComplement: return "bit-complement";
    case TrafficPattern::kBitReverse: return "bit-reverse";
    case TrafficPattern::kShuffle: return "shuffle";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kNeighbor: return "neighbor";
  }
  return "?";
}

std::vector<TrafficPattern> all_traffic_patterns() {
  return {TrafficPattern::kTranspose, TrafficPattern::kBitComplement,
          TrafficPattern::kBitReverse, TrafficPattern::kShuffle,
          TrafficPattern::kHotspot,   TrafficPattern::kNeighbor};
}

namespace {

std::uint32_t reverse_bits(std::uint32_t value, int bits) {
  std::uint32_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out = (out << 1) | ((value >> b) & 1U);
  }
  return out;
}

Coord destination_of(const Mesh& mesh, const PatternSpec& spec, Coord src) {
  const auto cores = static_cast<std::uint32_t>(mesh.num_cores());
  switch (spec.pattern) {
    case TrafficPattern::kTranspose:
      return {src.v, src.u};
    case TrafficPattern::kBitComplement:
      return {mesh.p() - 1 - src.u, mesh.q() - 1 - src.v};
    case TrafficPattern::kBitReverse: {
      const int bits = std::countr_zero(cores);
      const auto index = static_cast<std::uint32_t>(mesh.core_index(src));
      return mesh.core_coord(static_cast<std::int32_t>(reverse_bits(index, bits)));
    }
    case TrafficPattern::kShuffle: {
      const int bits = std::countr_zero(cores);
      const auto index = static_cast<std::uint32_t>(mesh.core_index(src));
      const std::uint32_t rotated =
          ((index << 1) | (index >> (bits - 1))) & (cores - 1U);
      return mesh.core_coord(static_cast<std::int32_t>(rotated));
    }
    case TrafficPattern::kHotspot:
      return spec.hotspot;
    case TrafficPattern::kNeighbor:
      return {src.u, (src.v + 1) % mesh.q()};
  }
  return src;  // unreachable
}

}  // namespace

CommSet generate_pattern(const Mesh& mesh, const PatternSpec& spec, Rng& rng) {
  PAMR_CHECK(spec.weight > 0.0, "pattern weight must be positive");
  PAMR_CHECK(spec.weight_jitter >= 0.0 && spec.weight_jitter < 1.0,
             "jitter must be in [0, 1)");
  if (spec.pattern == TrafficPattern::kTranspose) {
    PAMR_CHECK(mesh.p() == mesh.q(), "transpose needs a square mesh");
  }
  if (spec.pattern == TrafficPattern::kBitReverse ||
      spec.pattern == TrafficPattern::kShuffle) {
    PAMR_CHECK(std::has_single_bit(static_cast<std::uint32_t>(mesh.num_cores())),
               "bit patterns need a power-of-two core count");
  }
  if (spec.pattern == TrafficPattern::kHotspot) {
    PAMR_CHECK(mesh.contains(spec.hotspot), "hotspot outside mesh");
  }

  CommSet comms;
  comms.reserve(static_cast<std::size_t>(mesh.num_cores()));
  for (std::int32_t index = 0; index < mesh.num_cores(); ++index) {
    const Coord src = mesh.core_coord(index);
    const Coord snk = destination_of(mesh, spec, src);
    if (snk == src) continue;
    double weight = spec.weight;
    if (spec.weight_jitter > 0.0) {
      weight *= rng.uniform(1.0 - spec.weight_jitter, 1.0 + spec.weight_jitter);
    }
    comms.push_back(Communication{src, snk, weight});
  }
  return comms;
}

}  // namespace pamr
