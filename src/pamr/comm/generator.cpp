#include "pamr/comm/generator.hpp"

#include <algorithm>
#include <utility>

#include "pamr/util/assert.hpp"

namespace pamr {

CommSet generate_uniform(const Mesh& mesh, const UniformWorkload& spec, Rng& rng) {
  PAMR_CHECK(spec.num_comms >= 0, "negative communication count");
  PAMR_CHECK(spec.weight_lo > 0.0 && spec.weight_hi >= spec.weight_lo,
             "bad weight range");
  PAMR_CHECK(mesh.num_cores() >= 2, "need at least two cores for src != snk");
  CommSet comms;
  comms.reserve(static_cast<std::size_t>(spec.num_comms));
  for (std::int32_t i = 0; i < spec.num_comms; ++i) {
    const auto src_index =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(mesh.num_cores())));
    std::int32_t snk_index = src_index;
    while (snk_index == src_index) {
      snk_index = static_cast<std::int32_t>(
          rng.below(static_cast<std::uint64_t>(mesh.num_cores())));
    }
    comms.push_back(Communication{mesh.core_coord(src_index), mesh.core_coord(snk_index),
                                  rng.uniform(spec.weight_lo, spec.weight_hi)});
  }
  return comms;
}

std::vector<Coord> cores_at_distance(const Mesh& mesh, Coord src, std::int32_t distance) {
  std::vector<Coord> out;
  if (distance <= 0) return out;
  // Walk the L1 circle |du| + |dv| = distance and keep in-mesh cells.
  for (std::int32_t du = -distance; du <= distance; ++du) {
    const std::int32_t rest = distance - (du < 0 ? -du : du);
    const Coord a{src.u + du, src.v + rest};
    if (mesh.contains(a)) out.push_back(a);
    if (rest != 0) {
      const Coord b{src.u + du, src.v - rest};
      if (mesh.contains(b)) out.push_back(b);
    }
  }
  return out;
}

CommSet generate_with_length(const Mesh& mesh, std::int32_t num_comms, double weight_lo,
                             double weight_hi, std::int32_t length, Rng& rng) {
  PAMR_CHECK(num_comms >= 0, "negative communication count");
  const std::int32_t max_length = mesh.p() + mesh.q() - 2;
  const std::int32_t target = std::clamp<std::int32_t>(length, 1, max_length);
  CommSet comms;
  comms.reserve(static_cast<std::size_t>(num_comms));
  while (std::cmp_less(comms.size(), num_comms)) {
    const auto src_index =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(mesh.num_cores())));
    const Coord src = mesh.core_coord(src_index);
    const auto candidates = cores_at_distance(mesh, src, target);
    if (candidates.empty()) continue;  // corner sources may not reach far enough
    const Coord snk = candidates[rng.below(candidates.size())];
    comms.push_back(Communication{src, snk, rng.uniform(weight_lo, weight_hi)});
  }
  return comms;
}

}  // namespace pamr
