// Random workload generators for the §6 simulation campaigns.
//
// §6.1/§6.2 draw source and sink cores uniformly at random (distinct) and
// weights uniformly in a panel-specific range. §6.3 additionally constrains
// the Manhattan length of every communication to a target value.
#pragma once

#include <cstdint>

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/util/rng.hpp"

namespace pamr {

struct UniformWorkload {
  std::int32_t num_comms = 0;
  double weight_lo = 100.0;   ///< Mb/s, inclusive
  double weight_hi = 1500.0;  ///< Mb/s, exclusive
};

/// Uniform endpoints (src ≠ snk), uniform weights.
[[nodiscard]] CommSet generate_uniform(const Mesh& mesh, const UniformWorkload& spec,
                                       Rng& rng);

/// §6.3 generator: every communication has Manhattan length exactly
/// `length` (clamped to [1, p+q-2]); endpoints drawn uniformly among the
/// admissible pairs via rejection on the source.
[[nodiscard]] CommSet generate_with_length(const Mesh& mesh, std::int32_t num_comms,
                                           double weight_lo, double weight_hi,
                                           std::int32_t length, Rng& rng);

/// All (src, snk) pairs at the given L1 distance — used by tests and by the
/// length-constrained generator's sink sampling.
[[nodiscard]] std::vector<Coord> cores_at_distance(const Mesh& mesh, Coord src,
                                                   std::int32_t distance);

}  // namespace pamr
