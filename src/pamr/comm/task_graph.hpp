// Application task graphs (paper §1: "several applications, described as
// task graphs, are executed on a CMP, and each task is already mapped to a
// core").
//
// This module provides the system-level front end: applications are DAGs of
// tasks with per-edge bandwidth demands; a Mapping assigns tasks to cores;
// extract_communications() flattens one or more mapped applications into
// the CommSet the routing layer consumes (dropping intra-core edges and
// merging parallel demands between the same core pair, since the routing
// problem only sees aggregate δ per source/sink pair... the paper keeps
// communications separate per γ_i, so merging is optional and off by
// default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/util/rng.hpp"

namespace pamr {

using TaskId = std::int32_t;

class TaskGraph {
 public:
  explicit TaskGraph(std::string name = "app");

  TaskId add_task(std::string label);
  /// Adds a directed bandwidth demand (Mb/s) between two existing tasks.
  void add_edge(TaskId from, TaskId to, double bandwidth);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int32_t num_tasks() const noexcept {
    return static_cast<std::int32_t>(labels_.size());
  }
  struct Edge {
    TaskId from;
    TaskId to;
    double bandwidth;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] const std::string& label(TaskId task) const;

  /// True iff the edge relation is acyclic (applications are DAGs; cycles
  /// indicate a modelling error and are rejected by extract_communications).
  [[nodiscard]] bool is_acyclic() const;

  // -- Canonical application shapes used by the examples and tests --------

  /// stage_0 → stage_1 → … → stage_{n-1}, constant bandwidth.
  [[nodiscard]] static TaskGraph pipeline(std::int32_t stages, double bandwidth);

  /// source → n workers → sink (scatter/gather), constant bandwidth.
  [[nodiscard]] static TaskGraph fork_join(std::int32_t workers, double bandwidth);

  /// w×h grid of tasks, edges to east and south neighbours (a stencil halo
  /// exchange flattened to its steady-state bandwidth).
  [[nodiscard]] static TaskGraph stencil(std::int32_t width, std::int32_t height,
                                         double bandwidth);

 private:
  std::string name_;
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
};

/// Task → core assignment for one application.
struct Mapping {
  std::vector<Coord> task_to_core;
};

/// Row-major placement of tasks starting at `origin` (wraps to the next row
/// of the mesh); CHECKs that the application fits.
[[nodiscard]] Mapping map_row_major(const TaskGraph& graph, const Mesh& mesh,
                                    Coord origin);

/// Uniform random placement onto distinct cores; CHECKs that tasks ≤ cores.
[[nodiscard]] Mapping map_random(const TaskGraph& graph, const Mesh& mesh, Rng& rng);

struct MappedApplication {
  const TaskGraph* graph;
  Mapping mapping;
};

/// Flattens mapped applications into the routing layer's communication set.
/// Intra-core edges vanish (no link traffic); when `merge_parallel` is set,
/// demands between the same (src, snk) core pair are summed into one γ.
[[nodiscard]] CommSet extract_communications(
    const std::vector<MappedApplication>& apps, bool merge_parallel = false);

}  // namespace pamr
