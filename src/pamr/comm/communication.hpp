// Communications (paper §3.2): γ_i = (src core, sink core, δ_i), where δ_i
// is the requested bandwidth in Mb/s. The system-level view is a flat set —
// which application produced a communication is irrelevant to routing.
#pragma once

#include <string>
#include <vector>

#include "pamr/mesh/coord.hpp"

namespace pamr {

struct Communication {
  Coord src;
  Coord snk;
  double weight = 0.0;  ///< δ, requested bytes-per-second (Mb/s in §6)

  friend constexpr auto operator<=>(const Communication&,
                                    const Communication&) = default;
};

using CommSet = std::vector<Communication>;

/// Sum of all δ_i (the paper's K in §4).
[[nodiscard]] double total_weight(const CommSet& comms) noexcept;

/// Indices of `comms` ordered by decreasing weight, ties by original index.
/// All heuristics of §5 process communications in this order; returning
/// indices (rather than sorting in place) keeps per-communication identity
/// stable for routings.
[[nodiscard]] std::vector<std::size_t> order_by_decreasing_weight(const CommSet& comms);

/// Mean Manhattan length of the set (0 for an empty set).
[[nodiscard]] double mean_length(const CommSet& comms) noexcept;

[[nodiscard]] std::string to_string(const Communication& comm);

}  // namespace pamr
