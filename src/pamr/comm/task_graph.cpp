#include "pamr/comm/task_graph.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>

#include "pamr/util/assert.hpp"

namespace pamr {

TaskGraph::TaskGraph(std::string name) : name_(std::move(name)) {}

TaskId TaskGraph::add_task(std::string label) {
  labels_.push_back(std::move(label));
  return static_cast<TaskId>(labels_.size() - 1);
}

void TaskGraph::add_edge(TaskId from, TaskId to, double bandwidth) {
  PAMR_CHECK(from >= 0 && from < num_tasks(), "edge source out of range");
  PAMR_CHECK(to >= 0 && to < num_tasks(), "edge sink out of range");
  PAMR_CHECK(from != to, "self-edges are not meaningful");
  PAMR_CHECK(bandwidth > 0.0, "edge bandwidth must be positive");
  edges_.push_back(Edge{from, to, bandwidth});
}

const std::string& TaskGraph::label(TaskId task) const {
  PAMR_CHECK(task >= 0 && task < num_tasks(), "task id out of range");
  return labels_[static_cast<std::size_t>(task)];
}

bool TaskGraph::is_acyclic() const {
  // Kahn's algorithm.
  std::vector<std::int32_t> in_degree(static_cast<std::size_t>(num_tasks()), 0);
  for (const Edge& e : edges_) ++in_degree[static_cast<std::size_t>(e.to)];
  std::vector<TaskId> frontier;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (in_degree[static_cast<std::size_t>(t)] == 0) frontier.push_back(t);
  }
  std::int32_t visited = 0;
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const Edge& e : edges_) {
      if (e.from != t) continue;
      if (--in_degree[static_cast<std::size_t>(e.to)] == 0) frontier.push_back(e.to);
    }
  }
  return visited == num_tasks();
}

TaskGraph TaskGraph::pipeline(std::int32_t stages, double bandwidth) {
  PAMR_CHECK(stages >= 1, "pipeline needs at least one stage");
  TaskGraph graph("pipeline");
  for (std::int32_t s = 0; s < stages; ++s) {
    (void)graph.add_task("stage_" + std::to_string(s));
  }
  for (std::int32_t s = 0; s + 1 < stages; ++s) {
    graph.add_edge(s, s + 1, bandwidth);
  }
  return graph;
}

TaskGraph TaskGraph::fork_join(std::int32_t workers, double bandwidth) {
  PAMR_CHECK(workers >= 1, "fork_join needs at least one worker");
  TaskGraph graph("fork_join");
  const TaskId source = graph.add_task("source");
  std::vector<TaskId> mids;
  mids.reserve(static_cast<std::size_t>(workers));
  for (std::int32_t w = 0; w < workers; ++w) {
    mids.push_back(graph.add_task("worker_" + std::to_string(w)));
  }
  const TaskId sink = graph.add_task("sink");
  for (const TaskId mid : mids) {
    graph.add_edge(source, mid, bandwidth);
    graph.add_edge(mid, sink, bandwidth);
  }
  return graph;
}

TaskGraph TaskGraph::stencil(std::int32_t width, std::int32_t height, double bandwidth) {
  PAMR_CHECK(width >= 1 && height >= 1, "stencil dimensions must be positive");
  TaskGraph graph("stencil");
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      (void)graph.add_task("cell_" + std::to_string(y) + "_" + std::to_string(x));
    }
  }
  const auto id = [width](std::int32_t y, std::int32_t x) { return y * width + x; };
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      if (x + 1 < width) graph.add_edge(id(y, x), id(y, x + 1), bandwidth);
      if (y + 1 < height) graph.add_edge(id(y, x), id(y + 1, x), bandwidth);
    }
  }
  return graph;
}

Mapping map_row_major(const TaskGraph& graph, const Mesh& mesh, Coord origin) {
  PAMR_CHECK(mesh.contains(origin), "origin outside mesh");
  const std::int32_t start = mesh.core_index(origin);
  PAMR_CHECK(start + graph.num_tasks() <= mesh.num_cores(),
             "application does not fit from the given origin");
  Mapping mapping;
  mapping.task_to_core.reserve(static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    mapping.task_to_core.push_back(mesh.core_coord(start + t));
  }
  return mapping;
}

Mapping map_random(const TaskGraph& graph, const Mesh& mesh, Rng& rng) {
  PAMR_CHECK(graph.num_tasks() <= mesh.num_cores(), "more tasks than cores");
  std::vector<std::int32_t> cores(static_cast<std::size_t>(mesh.num_cores()));
  std::iota(cores.begin(), cores.end(), 0);
  rng.shuffle(cores);
  Mapping mapping;
  mapping.task_to_core.reserve(static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    mapping.task_to_core.push_back(mesh.core_coord(cores[static_cast<std::size_t>(t)]));
  }
  return mapping;
}

CommSet extract_communications(const std::vector<MappedApplication>& apps,
                               bool merge_parallel) {
  CommSet comms;
  for (const auto& app : apps) {
    PAMR_CHECK(app.graph != nullptr, "null task graph");
    PAMR_CHECK(app.graph->is_acyclic(), "application '" + app.graph->name() +
                                            "' has a cycle");
    PAMR_CHECK(std::cmp_equal(app.mapping.task_to_core.size(),
                              app.graph->num_tasks()),
               "mapping size mismatch for '" + app.graph->name() + "'");
    for (const auto& edge : app.graph->edges()) {
      const Coord src = app.mapping.task_to_core[static_cast<std::size_t>(edge.from)];
      const Coord snk = app.mapping.task_to_core[static_cast<std::size_t>(edge.to)];
      if (src == snk) continue;  // same core: no network traffic
      comms.push_back(Communication{src, snk, edge.bandwidth});
    }
  }
  if (!merge_parallel) return comms;

  std::map<std::pair<std::pair<std::int32_t, std::int32_t>,
                     std::pair<std::int32_t, std::int32_t>>,
           double>
      merged;
  for (const auto& comm : comms) {
    merged[{{comm.src.u, comm.src.v}, {comm.snk.u, comm.snk.v}}] += comm.weight;
  }
  CommSet out;
  out.reserve(merged.size());
  for (const auto& [key, weight] : merged) {
    out.push_back(Communication{{key.first.first, key.first.second},
                                {key.second.first, key.second.second},
                                weight});
  }
  return out;
}

}  // namespace pamr
