#include "pamr/comm/communication.hpp"

#include <algorithm>
#include <numeric>

#include "pamr/util/string_util.hpp"

namespace pamr {

double total_weight(const CommSet& comms) noexcept {
  double sum = 0.0;
  for (const auto& comm : comms) sum += comm.weight;
  return sum;
}

std::vector<std::size_t> order_by_decreasing_weight(const CommSet& comms) {
  std::vector<std::size_t> order(comms.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&comms](std::size_t a, std::size_t b) {
    return comms[a].weight > comms[b].weight;
  });
  return order;
}

double mean_length(const CommSet& comms) noexcept {
  if (comms.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& comm : comms) {
    sum += static_cast<double>(manhattan_distance(comm.src, comm.snk));
  }
  return sum / static_cast<double>(comms.size());
}

std::string to_string(const Communication& comm) {
  return to_string(comm.src) + "->" + to_string(comm.snk) + " @ " +
         format_bandwidth_mbps(comm.weight);
}

}  // namespace pamr
