// Classic synthetic NoC traffic patterns.
//
// The paper's campaigns draw endpoints uniformly at random; the example
// applications additionally exercise the standard permutation patterns used
// throughout the on-chip-network literature (Dally & Towles) — they stress
// the routing heuristics in structured ways that uniform traffic does not
// (e.g. transpose concentrates XY traffic on the diagonal).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/util/rng.hpp"

namespace pamr {

enum class TrafficPattern {
  kTranspose,      ///< (u, v) → (v, u); needs a square mesh
  kBitComplement,  ///< (u, v) → (p-1-u, q-1-v)
  kBitReverse,     ///< core index → bit-reversed index (pow-2 core count)
  kShuffle,        ///< core index → rotate-left-1 of index (pow-2 core count)
  kHotspot,        ///< every non-hotspot core sends to a fixed hotspot core
  kNeighbor,       ///< (u, v) → (u, v+1 mod q), east nearest-neighbour
};

[[nodiscard]] const char* to_cstring(TrafficPattern pattern) noexcept;
[[nodiscard]] std::vector<TrafficPattern> all_traffic_patterns();

struct PatternSpec {
  TrafficPattern pattern = TrafficPattern::kTranspose;
  double weight = 500.0;        ///< Mb/s per communication
  double weight_jitter = 0.0;   ///< ± uniform jitter fraction (0 = none)
  Coord hotspot{0, 0};          ///< used by kHotspot only
};

/// Generates one communication per eligible source core (self-loops are
/// dropped). CHECKs mesh-shape preconditions (square / power-of-two).
[[nodiscard]] CommSet generate_pattern(const Mesh& mesh, const PatternSpec& spec,
                                       Rng& rng);

}  // namespace pamr
