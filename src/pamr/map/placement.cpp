#include "pamr/map/placement.hpp"

#include <numeric>
#include <utility>

#include "pamr/routing/link_loads.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

namespace {

/// Flat task identifier across applications.
struct FlatTask {
  std::size_t app;
  TaskId task;
};

CommSet comms_of_assignment(const std::vector<const TaskGraph*>& apps,
                            const Mesh& mesh,
                            const std::vector<std::int32_t>& core_of_flat,
                            const std::vector<std::size_t>& app_offset) {
  CommSet comms;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (const TaskGraph::Edge& edge : apps[a]->edges()) {
      const std::int32_t src_core =
          core_of_flat[app_offset[a] + static_cast<std::size_t>(edge.from)];
      const std::int32_t snk_core =
          core_of_flat[app_offset[a] + static_cast<std::size_t>(edge.to)];
      if (src_core == snk_core) continue;
      comms.push_back(Communication{mesh.core_coord(src_core),
                                    mesh.core_coord(snk_core), edge.bandwidth});
    }
  }
  return comms;
}

/// Penalized routed cost of a communication set: route with the evaluator
/// and take LoadCost over the resulting link loads. Infeasible placements
/// thus score high but remain comparable (essential while escaping them).
double routed_cost(const Mesh& mesh, const CommSet& comms, const PowerModel& model,
                   Router& evaluator) {
  const RouteResult result = evaluator.route(mesh, comms, model);
  PAMR_ASSERT(result.routing.has_value());
  const LinkLoads loads = loads_of_routing(mesh, *result.routing);
  return LoadCost(model).total(loads.values());
}

}  // namespace

double placement_score(const Mesh& mesh, const std::vector<const TaskGraph*>& apps,
                       const std::vector<Mapping>& mappings, const PowerModel& model,
                       RouterKind evaluator) {
  PAMR_CHECK(apps.size() == mappings.size(), "one mapping per application");
  std::vector<MappedApplication> mapped;
  mapped.reserve(apps.size());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    mapped.push_back(MappedApplication{apps[a], mappings[a]});
  }
  const CommSet comms = extract_communications(mapped);
  const auto router = make_router(evaluator);
  return routed_cost(mesh, comms, model, *router);
}

PlacementResult optimize_placement(const Mesh& mesh,
                                   const std::vector<const TaskGraph*>& apps,
                                   const PowerModel& model, Rng& rng,
                                   const PlacementOptions& options) {
  PAMR_CHECK(!apps.empty(), "need at least one application");
  std::vector<std::size_t> app_offset(apps.size(), 0);
  std::size_t total_tasks = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    PAMR_CHECK(apps[a] != nullptr, "null task graph");
    PAMR_CHECK(apps[a]->is_acyclic(), "applications must be DAGs");
    app_offset[a] = total_tasks;
    total_tasks += static_cast<std::size_t>(apps[a]->num_tasks());
  }
  PAMR_CHECK(std::cmp_less_equal(total_tasks, mesh.num_cores()),
             "more tasks than cores");

  // slot_of_core: permutation of cores; the first total_tasks slots hold
  // tasks, the rest are empty. Random initial placement.
  std::vector<std::int32_t> cores(static_cast<std::size_t>(mesh.num_cores()));
  std::iota(cores.begin(), cores.end(), 0);
  rng.shuffle(cores);
  std::vector<std::int32_t> core_of_flat(cores.begin(),
                                         cores.begin() + static_cast<std::ptrdiff_t>(total_tasks));
  std::vector<std::int32_t> empty_cores(cores.begin() + static_cast<std::ptrdiff_t>(total_tasks),
                                        cores.end());

  const auto router = make_router(options.evaluator);
  auto score_now = [&]() {
    return routed_cost(mesh,
                       comms_of_assignment(apps, mesh, core_of_flat, app_offset),
                       model, *router);
  };

  PlacementResult result;
  double score = score_now();
  for (std::int32_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    // Task-task swaps (first improvement).
    for (std::size_t i = 0; i < total_tasks; ++i) {
      for (std::size_t j = i + 1; j < total_tasks; ++j) {
        std::swap(core_of_flat[i], core_of_flat[j]);
        const double candidate = score_now();
        if (candidate < score - 1e-9) {
          score = candidate;
          improved = true;
          ++result.swaps;
        } else {
          std::swap(core_of_flat[i], core_of_flat[j]);
        }
      }
      // Task-to-empty-core moves.
      for (auto& empty : empty_cores) {
        std::swap(core_of_flat[i], empty);
        const double candidate = score_now();
        if (candidate < score - 1e-9) {
          score = candidate;
          improved = true;
          ++result.swaps;
        } else {
          std::swap(core_of_flat[i], empty);
        }
      }
    }
    if (!improved) break;
  }

  result.score = score;
  result.mappings.resize(apps.size());
  for (std::size_t a = 0; a < apps.size(); ++a) {
    auto& mapping = result.mappings[a].task_to_core;
    mapping.reserve(static_cast<std::size_t>(apps[a]->num_tasks()));
    for (TaskId t = 0; t < apps[a]->num_tasks(); ++t) {
      mapping.push_back(
          mesh.core_coord(core_of_flat[app_offset[a] + static_cast<std::size_t>(t)]));
    }
  }
  // Final verdict under the full model.
  const CommSet comms = comms_of_assignment(apps, mesh, core_of_flat, app_offset);
  const RouteResult routed = router->route(mesh, comms, model);
  result.valid = routed.valid;
  result.power = routed.valid ? routed.power : 0.0;
  return result;
}

}  // namespace pamr
