// Power-aware task placement (the system layer above the paper's problem).
//
// The paper takes the mapping of tasks to cores as given (§1: "each task is
// already mapped to a core"). This module closes the loop for the example
// applications: given several task graphs, it searches the placement space
// with greedy pairwise swaps, scoring each candidate by the (penalized)
// power of a fast routed solution — so placements are judged by what the
// router can actually do with them, not by a hop-count proxy.
#pragma once

#include <cstdint>
#include <vector>

#include "pamr/comm/task_graph.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/router.hpp"
#include "pamr/util/rng.hpp"

namespace pamr {

struct PlacementOptions {
  std::int32_t max_passes = 8;    ///< swap-improvement passes
  RouterKind evaluator = RouterKind::kTB;  ///< fast scoring policy
};

struct PlacementResult {
  std::vector<Mapping> mappings;  ///< one per input application
  double score = 0.0;             ///< penalized routed cost of the placement
  double power = 0.0;             ///< model power, defined iff `valid`
  bool valid = false;             ///< the scored routing met all bandwidths
  std::int32_t swaps = 0;         ///< accepted improvement swaps
};

/// Places all applications' tasks on distinct cores (random initial
/// placement from `rng`, then greedy first-improvement swaps, including
/// swaps with empty cores). CHECKs that the total task count fits the mesh.
[[nodiscard]] PlacementResult optimize_placement(
    const Mesh& mesh, const std::vector<const TaskGraph*>& apps,
    const PowerModel& model, Rng& rng, const PlacementOptions& options = {});

/// Scores an explicit set of mappings with the same objective the optimizer
/// uses (penalized routed cost; lower is better).
[[nodiscard]] double placement_score(const Mesh& mesh,
                                     const std::vector<const TaskGraph*>& apps,
                                     const std::vector<Mapping>& mappings,
                                     const PowerModel& model,
                                     RouterKind evaluator = RouterKind::kTB);

}  // namespace pamr
