#include "pamr/dist/merger.hpp"

#include "pamr/util/assert.hpp"

namespace pamr {
namespace dist {

ResultMerger::ResultMerger(const CampaignPlan& plan)
    : plan_(&plan), parts_(plan.units.size()), present_(plan.units.size(), 0) {}

bool ResultMerger::add(std::uint64_t unit_id, std::string_view aggregate,
                       std::string& error) {
  if (unit_id >= parts_.size()) {
    error = "unit id " + std::to_string(unit_id) + " outside the plan's " +
            std::to_string(parts_.size()) + " units";
    return false;
  }
  if (present_[unit_id] != 0) {
    error = "duplicate result for unit " + std::to_string(unit_id);
    return false;
  }
  exp::PointAggregate parsed;
  if (!exp::parse_point_aggregate(aggregate, parsed, error)) {
    error = "unit " + std::to_string(unit_id) + ": " + error;
    return false;
  }
  const WorkUnit& unit = plan_->units[unit_id];
  if (parsed.instances != unit.unit.end - unit.unit.begin) {
    error = "unit " + std::to_string(unit_id) + " aggregate covers " +
            std::to_string(parsed.instances) + " instances, expected " +
            std::to_string(unit.unit.end - unit.unit.begin);
    return false;
  }
  parts_[unit_id] = parsed;
  present_[unit_id] = 1;
  ++have_;
  return true;
}

const exp::PointAggregate& ResultMerger::partial(std::uint64_t unit_id) const {
  PAMR_CHECK(unit_id < parts_.size() && present_[unit_id] != 0,
             "no result recorded for this unit");
  return parts_[unit_id];
}

std::vector<scenario::ScenarioResult> ResultMerger::merge() const {
  PAMR_CHECK(complete(), "cannot merge an incomplete campaign");
  std::vector<scenario::SuiteUnit> units;
  units.reserve(plan_->units.size());
  for (const WorkUnit& unit : plan_->units) units.push_back(unit.unit);
  return scenario::fold_suite_units(plan_->entries, units, parts_);
}

}  // namespace dist
}  // namespace pamr
