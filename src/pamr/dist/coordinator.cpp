#include "pamr/dist/coordinator.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "pamr/dist/shard_log.hpp"
#include "pamr/obs/obs.hpp"
#include "pamr/scenario/suite_runner.hpp"
#include "pamr/util/csv.hpp"
#include "pamr/util/log.hpp"
#include "pamr/util/timer.hpp"

namespace pamr {
namespace dist {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

struct WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;    ///< coordinator -> worker stdin
  int from_fd = -1;  ///< worker stdout -> coordinator
  MessageAssembler assembler;
  std::int64_t inflight = -1;  ///< unit id, or -1 when idle
  bool quitting = false;       ///< `quit` sent; EOF expected, not a failure
  std::uint32_t obs_pid = 0;   ///< trace lane (1-based; 0 is the coordinator)

  [[nodiscard]] bool alive() const noexcept { return pid != -1; }
};

/// Spawns `<exe> --worker` with CLOEXEC pipes, so a replacement worker
/// forked later does not inherit (and hold open) its siblings' pipe ends —
/// that would defeat EOF-based death detection.
WorkerProc spawn_worker(const std::string& exe) {
  int to_child[2];
  int from_child[2];
  if (pipe2(to_child, O_CLOEXEC) != 0) throw_errno("pipe2");
  if (pipe2(from_child, O_CLOEXEC) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    throw_errno("pipe2");
  }
  const pid_t pid = fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      close(fd);
    }
    throw_errno("fork");
  }
  if (pid == 0) {
    // Child: pipes become stdin/stdout (dup2 clears CLOEXEC on 0/1), every
    // other inherited descriptor closes itself at exec.
    if (dup2(to_child[0], STDIN_FILENO) < 0 ||
        dup2(from_child[1], STDOUT_FILENO) < 0) {
      _exit(126);
    }
    execl(exe.c_str(), exe.c_str(), "--worker", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(to_child[0]);
  close(from_child[1]);
  WorkerProc worker;
  worker.pid = pid;
  worker.to_fd = to_child[1];
  worker.from_fd = from_child[0];
  return worker;
}

bool write_all(int fd, std::string_view bytes) noexcept {
  while (!bytes.empty()) {
    const ssize_t n = write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void reap(WorkerProc& worker) {
  if (!worker.alive()) return;
  close(worker.to_fd);
  close(worker.from_fd);
  int status = 0;
  while (waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
  }
  worker.pid = -1;
  worker.to_fd = worker.from_fd = -1;
}

class SigpipeGuard {
 public:
  SigpipeGuard() : previous_(signal(SIGPIPE, SIG_IGN)) {}
  ~SigpipeGuard() { signal(SIGPIPE, previous_); }

 private:
  using Handler = void (*)(int);
  Handler previous_;
};

}  // namespace

CampaignOutcome run_campaign(const CampaignPlan& plan,
                             const CoordinatorOptions& options) {
  if (options.workers < 1 || options.workers > 256) {
    throw std::invalid_argument("workers must be in [1, 256], got " +
                                std::to_string(options.workers));
  }
  if (options.worker_exe.empty()) {
    throw std::invalid_argument("worker_exe must name the binary to re-execute");
  }
  if (plan.units.empty()) throw std::invalid_argument("empty campaign plan");

  const obs::PhaseScope campaign_phase(obs::Metric::kPhaseDistCampaign);
  // Workers inherit the telemetry gates through the environment: counters
  // and spans are recorded worker-side and shipped back over the wire.
  if (obs::enabled()) setenv("PAMR_OBS", "1", 1);
  if (obs::trace_enabled()) {
    setenv("PAMR_OBS_TRACE", "1", 1);
    obs::set_process_label(0, "coordinator");
  }

  const WallTimer timer;
  std::filesystem::create_directories(options.out_dir);
  const std::string journal_path = options.out_dir + "/shards.log";

  ShardLog journal(journal_path);
  std::map<std::uint64_t, std::string> journaled;
  std::string error;
  if (options.resume) {
    if (!journal.load(plan.fingerprint, journaled, error)) {
      throw std::runtime_error(error);
    }
  } else {
    std::ifstream existing(journal_path, std::ios::binary);
    if (existing && existing.peek() != std::ifstream::traits_type::eof()) {
      throw std::runtime_error("journal '" + journal_path +
                               "' already exists — pass --resume to continue that "
                               "campaign, or remove the directory to start over");
    }
  }
  if (!journal.open_append(plan.fingerprint, error)) throw std::runtime_error(error);

  ResultMerger merger(plan);
  for (const auto& [unit_id, aggregate] : journaled) {
    if (!merger.add(unit_id, aggregate, error)) {
      throw std::runtime_error("resumed " + error);
    }
  }

  CsvStreamWriter stream;
  (void)stream.open(options.out_dir + "/stream.csv", scenario::stream_csv_header(),
                    /*append=*/options.resume);

  std::deque<std::uint64_t> pending;
  for (const WorkUnit& unit : plan.units) {
    if (journaled.find(unit.id) == journaled.end()) pending.push_back(unit.id);
  }

  CampaignOutcome outcome;
  outcome.units_total = plan.units.size();
  outcome.units_resumed = journaled.size();
  obs::bump(obs::Metric::kDistUnitsResumeSkipped, journaled.size());

  const std::size_t max_spawns =
      options.workers +
      (options.max_respawns != 0 ? options.max_respawns : 16 + 4 * options.workers);
  std::size_t spawns = 0;
  std::uint64_t dispatched_new = 0;

  const SigpipeGuard sigpipe_guard;
  std::vector<WorkerProc> workers;

  const auto can_dispatch = [&] {
    return !pending.empty() &&
           (options.max_units == 0 || dispatched_new < options.max_units);
  };
  const auto inflight_count = [&] {
    std::size_t n = 0;
    for (const WorkerProc& w : workers) n += w.alive() && w.inflight >= 0 ? 1 : 0;
    return n;
  };

  // Forward-declared so dispatch's failure path can recycle the worker.
  const auto handle_death = [&](WorkerProc& worker) {
    const bool expected = worker.quitting;
    if (worker.inflight >= 0) {
      pending.push_front(static_cast<std::uint64_t>(worker.inflight));
      worker.inflight = -1;
      obs::bump(obs::Metric::kDistUnitsRequeued);
    }
    reap(worker);
    if (!expected) {
      ++outcome.worker_failures;
      PAMR_LOG_WARN("worker died unexpectedly; requeueing its unit");
    }
  };

  const auto dispatch = [&](WorkerProc& worker) {
    const std::uint64_t unit_id = pending.front();
    pending.pop_front();
    worker.inflight = static_cast<std::int64_t>(unit_id);
    ++dispatched_new;
    obs::bump(obs::Metric::kDistUnitsDispatched);
    if (!write_all(worker.to_fd, to_wire(plan.units[unit_id].to_message()))) {
      handle_death(worker);  // pipe broke: requeue and let the loop respawn
    }
  };

  const auto handle_message = [&](WorkerProc& worker, const Message& message) {
    if (message.type == "error") {
      const std::string* text = message.find("text");
      throw std::runtime_error("worker reported: " +
                               (text != nullptr ? *text : std::string("unknown")));
    }
    if (message.type == "spans") {
      // Span batch: file under the worker's trace lane; never merged into
      // results.
      std::vector<obs::TraceSpan> spans;
      for (const auto& [key, value] : message.fields) {
        if (key != "s") continue;
        obs::TraceSpan span;
        if (obs::decode_span(value, span)) spans.push_back(std::move(span));
      }
      obs::add_remote_spans(worker.obs_pid, std::move(spans));
      return;
    }
    UnitResult result;
    if (!parse_unit_result(message, result, error)) throw std::runtime_error(error);
    if (const std::string* ctr = message.find("ctr")) {
      // Worker counter deltas fold into this process's registry. A failed
      // merge (version skew) degrades telemetry, never the campaign.
      std::string merge_error;
      // pamr-lint: obs-ok (side channel: deltas go registry-to-registry, never near the aggregate bytes)
      if (!obs::merge_cell_deltas(*ctr, merge_error)) {
        PAMR_LOG_WARN("dropping worker telemetry: " + merge_error);
      }
    }
    if (worker.inflight < 0 ||
        static_cast<std::uint64_t>(worker.inflight) != result.id) {
      throw std::runtime_error("worker answered unit " + std::to_string(result.id) +
                               " which it was never assigned");
    }
    worker.inflight = -1;
    if (!merger.add(result.id, result.aggregate, error)) {
      throw std::runtime_error(error);
    }
    journal.record(result.id, result.aggregate);
    ++outcome.units_run;
    if (stream.is_open()) {
      const WorkUnit& unit = plan.units[result.id];
      const scenario::Scenario& owner = *plan.entries[unit.unit.scenario_index].scenario;
      (void)stream.append_row(scenario::stream_csv_row(
          unit.scenario, owner.points[unit.unit.point_index].x, unit.unit,
          merger.partial(result.id)));
    }
  };

  try {
    while (!merger.complete()) {
      // Interruption checkpoint: the dispatch budget is spent and every
      // in-flight unit has drained.
      if (options.max_units != 0 && dispatched_new >= options.max_units &&
          inflight_count() == 0) {
        break;  // checkpoint: budget spent, in-flight units drained
      }
      if (pending.empty() && inflight_count() == 0 && !merger.complete()) {
        throw std::runtime_error("campaign stalled: no pending or in-flight units "
                                 "but results are missing");
      }

      // Feed idle workers; spawn replacements (within budget) if the pool
      // has thinned below what the pending queue can use.
      for (WorkerProc& worker : workers) {
        if (worker.alive() && !worker.quitting && worker.inflight < 0) {
          if (can_dispatch()) {
            dispatch(worker);
          } else {
            worker.quitting = true;
            (void)write_all(worker.to_fd, to_wire(make_quit()));
          }
        }
      }
      while (can_dispatch()) {
        std::size_t usable = 0;
        for (const WorkerProc& w : workers) {
          usable += w.alive() && !w.quitting ? 1 : 0;
        }
        if (usable >= options.workers) break;
        if (spawns >= max_spawns) {
          if (usable == 0 && inflight_count() == 0) {
            throw std::runtime_error("worker respawn budget exhausted with units "
                                     "still pending");
          }
          break;
        }
        workers.push_back(spawn_worker(options.worker_exe));
        ++spawns;
        obs::bump(obs::Metric::kDistWorkerSpawns);
        workers.back().obs_pid = static_cast<std::uint32_t>(workers.size());
        if (obs::trace_enabled()) {
          obs::set_process_label(workers.back().obs_pid,
                                 "worker " + std::to_string(workers.size()));
        }
        dispatch(workers.back());
      }

      // Wait for any worker to produce bytes or die.
      std::vector<pollfd> fds;
      std::vector<std::size_t> owners;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (workers[w].alive()) {
          fds.push_back(pollfd{workers[w].from_fd, POLLIN, 0});
          owners.push_back(w);
        }
      }
      if (fds.empty()) continue;  // all dead: the spawn logic above retries
      while (poll(fds.data(), fds.size(), -1) < 0) {
        if (errno != EINTR) throw_errno("poll");
      }

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        WorkerProc& worker = workers[owners[i]];
        char buffer[65536];
        const ssize_t n = read(worker.from_fd, buffer, sizeof buffer);
        if (n > 0) {
          std::vector<Message> messages;
          if (!worker.assembler.feed(std::string_view(buffer, static_cast<std::size_t>(n)),
                                     messages, error)) {
            throw std::runtime_error("protocol error from worker: " + error);
          }
          for (const Message& message : messages) handle_message(worker, message);
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          handle_death(worker);
        }
      }
    }
  } catch (...) {
    for (WorkerProc& worker : workers) reap(worker);
    throw;
  }

  for (WorkerProc& worker : workers) {
    if (worker.alive() && !worker.quitting) {
      (void)write_all(worker.to_fd, to_wire(make_quit()));
    }
    reap(worker);
  }

  outcome.complete = merger.complete();
  if (outcome.complete) outcome.results = merger.merge();
  outcome.elapsed_seconds = timer.elapsed_seconds();
  return outcome;
}

std::string self_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t n = readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace dist
}  // namespace pamr
