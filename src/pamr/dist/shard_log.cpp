#include "pamr/dist/shard_log.hpp"

#include <fstream>

#include "pamr/exp/metrics.hpp"
#include "pamr/util/log.hpp"
#include "pamr/util/string_util.hpp"

namespace pamr {
namespace dist {

namespace {

constexpr std::string_view kHeaderPrefix = "pamr-shards/1 fingerprint=";
constexpr std::string_view kDonePrefix = "done ";

}  // namespace

ShardLog::~ShardLog() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ShardLog::load(std::string_view fingerprint,
                    std::map<std::uint64_t, std::string>& completed,
                    std::string& error) {
  completed.clear();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return true;  // no journal yet — nothing to resume

  std::string line;
  if (!std::getline(in, line) || line.empty()) return true;  // empty file
  if (!starts_with(line, kHeaderPrefix) ||
      line.substr(kHeaderPrefix.size()) != fingerprint) {
    error = "journal '" + path_ + "' belongs to a different campaign (header '" +
            line + "', expected fingerprint " + std::string(fingerprint) + ")";
    return false;
  }

  std::size_t line_number = 1;
  bool previous_incomplete = false;
  std::string pending_warning;
  while (std::getline(in, line)) {
    ++line_number;
    if (previous_incomplete) {
      // A malformed line is only forgivable as the file's *last* line.
      error = "journal '" + path_ + "' is corrupt: " + pending_warning;
      return false;
    }
    const auto fail = [&](const std::string& what) {
      pending_warning = what + " at line " + std::to_string(line_number);
      previous_incomplete = true;
    };
    if (!starts_with(line, kDonePrefix)) {
      fail("expected a 'done' line");
      continue;
    }
    const std::string_view rest = std::string_view(line).substr(kDonePrefix.size());
    const std::size_t space = rest.find(' ');
    std::int64_t unit_id = 0;
    if (space == std::string_view::npos ||
        !parse_int64(rest.substr(0, space), unit_id) || unit_id < 0) {
      fail("malformed unit id");
      continue;
    }
    const std::string_view aggregate = rest.substr(space + 1);
    // Validate the payload here, not just its shape: a crash mid-append can
    // truncate *inside* the aggregate text, and an unparsable final line
    // must rerun its unit, not wedge --resume at merge time.
    exp::PointAggregate parsed;
    std::string parse_error;
    if (!exp::parse_point_aggregate(aggregate, parsed, parse_error)) {
      fail("unparsable aggregate (" + parse_error + ")");
      continue;
    }
    completed[static_cast<std::uint64_t>(unit_id)] = std::string(aggregate);
  }
  if (previous_incomplete) {
    PAMR_LOG_WARN("journal '" + path_ + "': dropping truncated final line (" +
                  pending_warning + "); its unit will rerun");
  }
  return true;
}

bool ShardLog::open_append(std::string_view fingerprint, std::string& error) {
  bool need_header = true;
  {
    std::ifstream existing(path_, std::ios::binary);
    need_header = !existing || existing.peek() == std::ifstream::traits_type::eof();
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    error = "cannot open journal '" + path_ + "' for appending";
    return false;
  }
  if (need_header) {
    std::fprintf(file_, "%.*s%.*s\n", static_cast<int>(kHeaderPrefix.size()),
                 kHeaderPrefix.data(), static_cast<int>(fingerprint.size()),
                 fingerprint.data());
    std::fflush(file_);
  }
  return true;
}

bool ShardLog::record(std::uint64_t unit_id, std::string_view aggregate) {
  if (file_ == nullptr) return false;
  const int written =
      std::fprintf(file_, "done %llu %.*s\n", static_cast<unsigned long long>(unit_id),
                   static_cast<int>(aggregate.size()), aggregate.data());
  const bool ok = written > 0 && std::fflush(file_) == 0;
  if (!ok && !warned_) {
    PAMR_LOG_WARN("journal '" + path_ + "': append failed; this run cannot be resumed");
    warned_ = true;
  }
  return ok;
}

}  // namespace dist
}  // namespace pamr
