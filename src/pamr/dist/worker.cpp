#include "pamr/dist/worker.hpp"

#include <cstdlib>
#include <optional>
#include <string>

#include "pamr/dist/protocol.hpp"
#include "pamr/exp/metrics.hpp"
#include "pamr/obs/obs.hpp"
#include "pamr/scenario/scenario_spec.hpp"
#include "pamr/scenario/work_list.hpp"
#include "pamr/util/string_util.hpp"
#include "pamr/util/timer.hpp"

namespace pamr {
namespace dist {

namespace {

void send(std::FILE* out, const Message& message) {
  const std::string wire = to_wire(message);
  std::fwrite(wire.data(), 1, wire.size(), out);
  std::fflush(out);
}

[[nodiscard]] int fail(std::FILE* out, const std::string& text) {
  send(out, make_error(text));
  return 4;
}

[[nodiscard]] std::size_t fail_after_limit() {
  if (const char* env = std::getenv("PAMR_DIST_WORKER_FAIL_AFTER")) {
    std::int64_t limit = 0;
    if (parse_int64(env, limit) && limit > 0) return static_cast<std::size_t>(limit);
  }
  return 0;
}

}  // namespace

int run_worker(std::FILE* in, std::FILE* out) {
  const std::size_t fail_after = fail_after_limit();
  std::size_t units_received = 0;

  Message message;
  std::string error;
  while (read_message(in, message, error)) {
    if (message.type == "quit") return 0;
    WorkUnit unit;
    if (!parse_work_unit(message, unit, error)) return fail(out, error);

    ++units_received;
    if (fail_after != 0 && units_received > fail_after) {
      std::_Exit(3);  // simulated crash: no reply, no cleanup
    }

    scenario::ScenarioSpec spec;
    if (!scenario::ScenarioSpec::parse(unit.spec, spec, error)) {
      return fail(out, "unit " + std::to_string(unit.id) + ": bad spec: " + error);
    }
    const Mesh mesh = spec.make_mesh();
    const PowerModel model = spec.make_model();

    // Telemetry rides the wire as a side channel: counter deltas for this
    // unit as a "ctr" field on the result, span batches as their own
    // message. Neither ever reaches the aggregate bytes (the obs-value
    // lint rule guards exactly this boundary).
    const bool telemetry = obs::enabled();
    obs::Snapshot before;
    // pamr-lint: obs-ok (per-unit delta baseline; encoded into the "ctr" side channel only)
    if (telemetry) before = obs::snapshot();

    const WallTimer timer;
    std::optional<obs::Span> unit_span;
    if (obs::trace_enabled()) {
      unit_span.emplace(
          "unit " + unit.scenario + "[" + std::to_string(unit.unit.point_index) + "]",
          "{\"scenario\":\"" + json_escape(unit.scenario) +
              "\",\"point\":" + std::to_string(unit.unit.point_index) +
              ",\"begin\":" + std::to_string(unit.unit.begin) +
              ",\"end\":" + std::to_string(unit.unit.end) +
              ",\"unit_id\":" + std::to_string(unit.id) + "}");
    }
    const exp::PointAggregate aggregate = scenario::run_unit_instances(
        mesh, model, spec, unit.unit.begin, unit.unit.end, unit.instances, unit.seed,
        unit.unit.point_index);
    unit_span.reset();

    if (obs::trace_enabled()) {
      const std::vector<obs::TraceSpan> spans = obs::drain_spans();
      if (!spans.empty()) {
        Message batch;
        batch.type = "spans";
        batch.fields.emplace_back("id", std::to_string(unit.id));
        for (const obs::TraceSpan& span : spans) {
          batch.fields.emplace_back("s", obs::encode_span(span));
        }
        send(out, batch);
      }
    }

    UnitResult result;
    result.id = unit.id;
    result.aggregate = exp::serialize_point_aggregate(aggregate);
    result.elapsed_ms = timer.elapsed_seconds() * 1e3;
    Message reply = result.to_message();
    if (telemetry) {
      // pamr-lint: obs-ok (counter deltas travel in a dedicated "ctr" field, never in the aggregate)
      const std::string ctr = obs::encode_cell_deltas(before, obs::snapshot());
      if (!ctr.empty()) reply.fields.emplace_back("ctr", ctr);
    }
    send(out, reply);
  }
  if (!error.empty()) return fail(out, error);
  return 0;  // EOF: coordinator closed the pipe
}

}  // namespace dist
}  // namespace pamr
