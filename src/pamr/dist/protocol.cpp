#include "pamr/dist/protocol.hpp"

#include <cinttypes>

#include "pamr/util/assert.hpp"
#include "pamr/util/string_util.hpp"

namespace pamr {
namespace dist {

namespace {

constexpr std::string_view kEnd = "end";

bool line_clean(std::string_view text) noexcept {
  return text.find('\n') == std::string_view::npos;
}

bool parse_field_u64(const Message& message, std::string_view key, std::uint64_t& out,
                     std::string& error) {
  const std::string* value = message.find(key);
  std::int64_t parsed = 0;
  if (value == nullptr || !parse_int64(*value, parsed) || parsed < 0) {
    error = "message '" + message.type + "' needs a non-negative integer '" +
            std::string(key) + "' field";
    return false;
  }
  out = static_cast<std::uint64_t>(parsed);
  return true;
}

}  // namespace

const std::string* Message::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string to_wire(const Message& message) {
  PAMR_ASSERT_MSG(!message.type.empty() && line_clean(message.type) &&
                      message.type.find('=') == std::string::npos &&
                      message.type != kEnd,
                  "malformed message type");
  std::string out = message.type + "\n";
  for (const auto& [key, value] : message.fields) {
    PAMR_ASSERT_MSG(!key.empty() && line_clean(key) &&
                        key.find('=') == std::string::npos && line_clean(value),
                    "malformed message field");
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  out += kEnd;
  out += '\n';
  return out;
}

namespace {

/// Consumes one line (without the '\n'). Returns false on EOF with nothing
/// read; a final unterminated line is returned as-is.
bool read_line(std::FILE* in, std::string& line) {
  line.clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    line += static_cast<char>(c);
  }
  return !line.empty();
}

/// Feeds one line into an under-construction message. Returns true when the
/// message is complete.
bool feed_line(std::string_view line, Message& current, bool& in_message,
               std::string& error) {
  if (!in_message) {
    if (line.empty()) return false;  // tolerate blank separators
    if (line == kEnd || line.find('=') != std::string_view::npos) {
      error = "expected a message type line, got '" + std::string(line) + "'";
      return false;
    }
    current = Message{std::string(line), {}};
    in_message = true;
    return false;
  }
  if (line == kEnd) {
    in_message = false;
    return true;
  }
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    error = "expected key=value or 'end' inside message '" + current.type + "'";
    return false;
  }
  current.fields.emplace_back(std::string(line.substr(0, eq)),
                              std::string(line.substr(eq + 1)));
  return false;
}

}  // namespace

bool read_message(std::FILE* in, Message& out, std::string& error) {
  error.clear();
  Message current;
  bool in_message = false;
  std::string line;
  while (read_line(in, line)) {
    if (feed_line(line, current, in_message, error)) {
      out = std::move(current);
      return true;
    }
    if (!error.empty()) return false;
  }
  if (in_message) error = "EOF inside message '" + current.type + "'";
  return false;
}

bool MessageAssembler::feed(std::string_view bytes, std::vector<Message>& out,
                            std::string& error) {
  error.clear();
  partial_ += bytes;
  std::size_t start = 0;
  for (std::size_t nl; (nl = partial_.find('\n', start)) != std::string::npos;
       start = nl + 1) {
    const std::string_view line(partial_.data() + start, nl - start);
    if (feed_line(line, current_, in_message_, error)) {
      out.push_back(std::move(current_));
      current_ = Message{};
    }
    if (!error.empty()) return false;
  }
  partial_.erase(0, start);
  return true;
}

// -- Typed messages ---------------------------------------------------------

Message WorkUnit::to_message() const {
  return Message{"unit",
                 {{"id", std::to_string(id)},
                  {"scenario", scenario},
                  {"point", std::to_string(unit.point_index)},
                  {"begin", std::to_string(unit.begin)},
                  {"to", std::to_string(unit.end)},
                  {"instances", std::to_string(instances)},
                  {"seed", std::to_string(seed)},
                  {"spec", spec}}};
}

bool parse_work_unit(const Message& message, WorkUnit& out, std::string& error) {
  if (message.type != "unit") {
    error = "expected a 'unit' message, got '" + message.type + "'";
    return false;
  }
  WorkUnit parsed;
  std::uint64_t point = 0, begin = 0, end = 0, instances = 0;
  if (!parse_field_u64(message, "id", parsed.id, error) ||
      !parse_field_u64(message, "point", point, error) ||
      !parse_field_u64(message, "begin", begin, error) ||
      !parse_field_u64(message, "to", end, error) ||
      !parse_field_u64(message, "instances", instances, error) ||
      !parse_field_u64(message, "seed", parsed.seed, error)) {
    return false;
  }
  const std::string* scenario = message.find("scenario");
  const std::string* spec = message.find("spec");
  if (scenario == nullptr || spec == nullptr || spec->empty()) {
    error = "'unit' message needs 'scenario' and 'spec' fields";
    return false;
  }
  if (begin > end || end > instances || instances == 0) {
    error = "'unit' range [" + std::to_string(begin) + ", " + std::to_string(end) +
            ") out of bounds for " + std::to_string(instances) + " instances";
    return false;
  }
  parsed.scenario = *scenario;
  parsed.spec = *spec;
  parsed.unit.point_index = static_cast<std::size_t>(point);
  parsed.unit.begin = static_cast<std::size_t>(begin);
  parsed.unit.end = static_cast<std::size_t>(end);
  parsed.instances = static_cast<std::size_t>(instances);
  out = std::move(parsed);
  return true;
}

Message UnitResult::to_message() const {
  return Message{"result",
                 {{"id", std::to_string(id)},
                  {"elapsed_ms", format_compact(elapsed_ms)},
                  {"agg", aggregate}}};
}

bool parse_unit_result(const Message& message, UnitResult& out, std::string& error) {
  if (message.type != "result") {
    error = "expected a 'result' message, got '" + message.type + "'";
    return false;
  }
  UnitResult parsed;
  if (!parse_field_u64(message, "id", parsed.id, error)) return false;
  const std::string* aggregate = message.find("agg");
  if (aggregate == nullptr || aggregate->empty()) {
    error = "'result' message needs an 'agg' field";
    return false;
  }
  if (const std::string* elapsed = message.find("elapsed_ms")) {
    (void)parse_double(*elapsed, parsed.elapsed_ms);  // informational; 0 on junk
  }
  parsed.aggregate = *aggregate;
  out = std::move(parsed);
  return true;
}

Message make_quit() { return Message{"quit", {}}; }

Message make_error(std::string_view text) {
  std::string clean(text);
  for (char& c : clean) {
    if (c == '\n') c = ' ';
  }
  return Message{"error", {{"text", std::move(clean)}}};
}

// -- Campaign plan ----------------------------------------------------------

namespace {

/// FNV-1a 64; stable across platforms, good enough to catch a resumed
/// journal whose campaign differs in any defining parameter.
void fnv1a(std::uint64_t& hash, std::string_view text) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  hash ^= 0xff;
  hash *= 0x100000001b3ULL;  // separator so field boundaries matter
}

}  // namespace

CampaignPlan build_campaign_plan(std::vector<scenario::SuiteEntry> entries,
                                 std::int32_t instances, std::size_t chunk) {
  CampaignPlan plan;
  plan.entries = std::move(entries);
  plan.instances = instances;
  plan.chunk = chunk;

  const std::vector<scenario::SuiteUnit> units =
      scenario::enumerate_suite_units(plan.entries, instances, chunk);
  plan.units.reserve(units.size());

  std::uint64_t hash = 0xcbf29ce484222325ULL;
  fnv1a(hash, "pamr-dist/1");
  fnv1a(hash, std::to_string(instances));
  fnv1a(hash, std::to_string(chunk));

  for (std::size_t u = 0; u < units.size(); ++u) {
    const scenario::SuiteEntry& entry = plan.entries[units[u].scenario_index];
    WorkUnit unit;
    unit.id = u;
    unit.scenario = entry.scenario->name;
    unit.unit = units[u];
    unit.instances = static_cast<std::size_t>(instances);
    unit.seed = entry.seed;
    unit.spec = entry.scenario->points[units[u].point_index].spec.to_string();
    fnv1a(hash, unit.scenario);
    fnv1a(hash, std::to_string(unit.seed));
    fnv1a(hash, std::to_string(unit.unit.point_index));
    fnv1a(hash, std::to_string(unit.unit.begin));
    fnv1a(hash, std::to_string(unit.unit.end));
    fnv1a(hash, unit.spec);
    plan.units.push_back(std::move(unit));
  }

  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, hash);
  plan.fingerprint = buffer;
  return plan;
}

}  // namespace dist
}  // namespace pamr
