// On-disk journal of completed work units.
//
// The coordinator appends one flushed line per completed unit, so a killed
// campaign loses at most the units that were literally in flight. A header
// pins the campaign fingerprint (protocol.hpp): `--resume` against a
// journal written by a different suite, seed, trial count or chunk size is
// refused instead of silently merging apples into oranges.
//
//   pamr-shards/1 fingerprint=9f2ab77c01d3e8a4
//   done 0 aggv=1 n=8 sf=...
//   done 3 aggv=1 n=8 sf=...
//
// A truncated final line (the crash happened mid-append) is dropped with a
// warning — its unit simply reruns; corruption anywhere else is an error.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

namespace pamr {
namespace dist {

class ShardLog {
 public:
  explicit ShardLog(std::string path) : path_(std::move(path)) {}
  ~ShardLog();

  ShardLog(const ShardLog&) = delete;
  ShardLog& operator=(const ShardLog&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Reads an existing journal into `completed` (unit id -> aggregate wire
  /// line). A missing or empty file is fine (leaves `completed` empty);
  /// a fingerprint mismatch or a corrupt interior line returns false with
  /// `error` set.
  [[nodiscard]] bool load(std::string_view fingerprint,
                          std::map<std::uint64_t, std::string>& completed,
                          std::string& error);

  /// Opens for appending, writing the header first if the file is new or
  /// empty. Returns false with `error` set on I/O failure.
  [[nodiscard]] bool open_append(std::string_view fingerprint, std::string& error);

  /// Appends one completed unit and flushes. Returns false (after logging,
  /// once) on I/O failure — the campaign still finishes, it just cannot be
  /// resumed past this point.
  bool record(std::uint64_t unit_id, std::string_view aggregate);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool warned_ = false;
};

}  // namespace dist
}  // namespace pamr
