// Wire protocol of the distributed suite runner.
//
// A campaign is planned once: the whole suite batch — every (scenario,
// point, instance-chunk) triple — flattens into one canonical WorkUnit list
// (scenario/work_list.hpp enumeration, unit id == list index). Coordinator
// and workers then exchange line-delimited key=value messages over pipes:
//
//   unit                         result                    error
//   id=17                        id=17                     text=<reason>
//   scenario=fig7a_small         elapsed_ms=12.5           end
//   point=2                      agg=aggv=1 n=8 ...
//   begin=16                     end
//   to=24
//   instances=300
//   seed=7
//   spec=mesh=8x8 model=... ; kind=uniform n=40 ...
//   end
//
// A message is its type line, any number of key=value lines (values may
// themselves contain '=' and ';' — ScenarioSpec and aggregate wire forms
// ride through verbatim), and a literal "end" line. Units are
// self-contained: a worker re-parses the spec text and never consults the
// scenario registry, so coordinator and worker agree on the workload by
// construction, not by build-order luck.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pamr/scenario/work_list.hpp"

namespace pamr {
namespace dist {

struct Message {
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  /// First value for `key`, or nullptr.
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;
};

/// Serializes to the framed text form (asserts keys/values are line-clean).
[[nodiscard]] std::string to_wire(const Message& message);

/// Blocking read of one message (the worker side; stdin is a pipe).
/// Returns false on clean EOF (`error` empty) or malformed framing
/// (`error` set).
[[nodiscard]] bool read_message(std::FILE* in, Message& out, std::string& error);

/// Incremental reassembly for the coordinator's poll loop: feed whatever
/// bytes arrived, collect every message completed by them.
class MessageAssembler {
 public:
  [[nodiscard]] bool feed(std::string_view bytes, std::vector<Message>& out,
                          std::string& error);

 private:
  std::string partial_;  ///< carry of an unterminated line
  Message current_;
  bool in_message_ = false;
};

// -- Typed messages ---------------------------------------------------------

/// One distributable unit: instances [unit.begin, unit.end) of one point.
struct WorkUnit {
  std::uint64_t id = 0;  ///< index into the canonical campaign unit list
  std::string scenario;  ///< registry name (outputs, logs, stream rows)
  scenario::SuiteUnit unit;
  std::size_t instances = 0;  ///< instances per point (the envelope divisor)
  std::uint64_t seed = 0;     ///< the owning scenario's base seed
  std::string spec;           ///< ScenarioSpec::to_string() of the point

  [[nodiscard]] Message to_message() const;

  friend bool operator==(const WorkUnit&, const WorkUnit&) = default;
};

[[nodiscard]] bool parse_work_unit(const Message& message, WorkUnit& out,
                                   std::string& error);

struct UnitResult {
  std::uint64_t id = 0;
  std::string aggregate;    ///< exp::serialize_point_aggregate line
  double elapsed_ms = 0.0;  ///< wall time; informational only, never merged

  [[nodiscard]] Message to_message() const;
};

[[nodiscard]] bool parse_unit_result(const Message& message, UnitResult& out,
                                     std::string& error);

[[nodiscard]] Message make_quit();
[[nodiscard]] Message make_error(std::string_view text);

// -- Campaign plan ----------------------------------------------------------

/// The deterministic expansion of a suite batch. Built identically from the
/// same (entries, instances, chunk) on every run, which is what lets an
/// interrupted campaign resume: the fingerprint — a stable hash over every
/// unit's defining fields — is stored in the shard journal and must match
/// before journaled results are trusted.
struct CampaignPlan {
  std::vector<scenario::SuiteEntry> entries;
  std::int32_t instances = 0;
  std::size_t chunk = 0;
  std::vector<WorkUnit> units;  ///< unit id == vector index
  std::string fingerprint;      ///< 16 hex digits
};

[[nodiscard]] CampaignPlan build_campaign_plan(std::vector<scenario::SuiteEntry> entries,
                                               std::int32_t instances,
                                               std::size_t chunk);

}  // namespace dist
}  // namespace pamr
