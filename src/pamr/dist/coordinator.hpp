// Campaign coordinator: shards one plan across worker processes.
//
// The coordinator owns no compute. It spawns N children of the same binary
// in `--worker` mode, keeps exactly one unit in flight per worker over
// pipes, and reacts to results in an event loop (poll): journal the unit
// (shard_log.hpp), stream a progress row (util/csv CsvStreamWriter), hand
// the worker its next unit. A worker that dies mid-unit gets its unit
// requeued and a replacement spawned, within a respawn budget; a campaign
// killed outright resumes from the journal with `--resume`, rerunning only
// the units that never completed. Because completed aggregates are folded
// in canonical order by the ResultMerger regardless of which process
// computed them or in which run, the final tables are bit-identical to a
// single-process SuiteRunner — interrupted, resumed, or not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pamr/dist/merger.hpp"
#include "pamr/dist/protocol.hpp"

namespace pamr {
namespace dist {

struct CoordinatorOptions {
  std::size_t workers = 2;
  std::string worker_exe;      ///< spawned as `<worker_exe> --worker`
  std::string out_dir = ".";   ///< journal (shards.log) + progress stream
  bool resume = false;         ///< trust an existing matching journal
  /// Checkpoint/test hook: dispatch at most this many new units, then stop
  /// cleanly (journal intact, exit incomplete). 0 = no limit.
  std::uint64_t max_units = 0;
  /// Replacement workers allowed beyond the initial N before the campaign
  /// aborts. 0 = default (16 + 4 * workers).
  std::size_t max_respawns = 0;
};

struct CampaignOutcome {
  bool complete = false;
  std::size_t units_total = 0;
  std::size_t units_resumed = 0;  ///< satisfied from the journal
  std::size_t units_run = 0;      ///< freshly executed this run
  std::size_t worker_failures = 0;
  double elapsed_seconds = 0.0;
  /// Merged per-scenario results; populated only when `complete`.
  std::vector<scenario::ScenarioResult> results;
};

/// Runs the campaign to completion (or to the max_units checkpoint).
/// Throws std::runtime_error on unrecoverable failure: journal mismatch, a
/// worker-reported spec/protocol error, or worker deaths beyond the
/// respawn budget.
[[nodiscard]] CampaignOutcome run_campaign(const CampaignPlan& plan,
                                           const CoordinatorOptions& options);

/// Path of the currently running executable (/proc/self/exe when
/// available, else argv0) — what the coordinator re-executes as workers.
[[nodiscard]] std::string self_executable(const char* argv0);

}  // namespace dist
}  // namespace pamr
