// Deterministic re-aggregation of distributed unit results.
//
// Workers finish units in whatever order the OS schedules them; the merger
// buffers each unit's chunk aggregate and folds them *in canonical unit
// order* (the plan's enumeration: scenario-major, point-major, chunk-major)
// once the campaign is complete. That is the identical fold the in-process
// SuiteRunner performs over its parallel_for partials, so a 2-worker
// campaign reproduces a 1-thread run bit-for-bit — same Welford rounding
// history, same CSV bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pamr/dist/protocol.hpp"
#include "pamr/exp/metrics.hpp"
#include "pamr/scenario/suite_runner.hpp"

namespace pamr {
namespace dist {

class ResultMerger {
 public:
  explicit ResultMerger(const CampaignPlan& plan);

  /// Records one unit's aggregate (wire form). Rejects unknown ids,
  /// duplicates, unparsable aggregates, and instance-count mismatches.
  [[nodiscard]] bool add(std::uint64_t unit_id, std::string_view aggregate,
                         std::string& error);

  [[nodiscard]] bool complete() const noexcept { return have_ == parts_.size(); }
  [[nodiscard]] std::size_t units_total() const noexcept { return parts_.size(); }
  [[nodiscard]] std::size_t units_have() const noexcept { return have_; }

  /// The parsed partial of one recorded unit (for streaming rows).
  [[nodiscard]] const exp::PointAggregate& partial(std::uint64_t unit_id) const;

  /// Folds all units in canonical order. CHECKs complete().
  [[nodiscard]] std::vector<scenario::ScenarioResult> merge() const;

 private:
  const CampaignPlan* plan_;
  std::vector<exp::PointAggregate> parts_;
  std::vector<char> present_;
  std::size_t have_ = 0;
};

}  // namespace dist
}  // namespace pamr
