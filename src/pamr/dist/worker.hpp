// Worker side of the distributed protocol.
//
// A worker is the same binary as the coordinator, re-executed with
// `--worker`: it reads `unit` messages from stdin, runs each unit's
// instances through the exact SuiteRunner kernel
// (scenario::run_unit_instances — same seed derivation, same envelope
// positions), and writes a `result` message with the bit-exact aggregate
// wire form to stdout. Units are processed serially; parallelism is the
// coordinator's job (N workers × 1 unit in flight each).
#pragma once

#include <cstdio>

namespace pamr {
namespace dist {

/// Runs the worker loop until `quit` or EOF. Returns the process exit
/// code: 0 on a clean shutdown, non-zero after reporting a protocol or
/// spec error to the coordinator.
///
/// Test hook: if PAMR_DIST_WORKER_FAIL_AFTER=N is set (N > 0), the worker
/// _Exit(3)s on receiving its (N+1)-th unit without replying — simulating
/// a crashed shard so the fault-tolerance tests can watch the coordinator
/// requeue the in-flight unit onto a fresh worker.
[[nodiscard]] int run_worker(std::FILE* in, std::FILE* out);

}  // namespace dist
}  // namespace pamr
