#include "pamr/theory/worst_case.hpp"

#include <cmath>

#include "pamr/routing/link_loads.hpp"
#include "pamr/routing/routers.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

namespace {

double continuous_dynamic_power(const std::vector<double>& loads,
                                const PowerParams& params) {
  double sum = 0.0;
  for (const double load : loads) {
    if (load > 0.0) sum += params.p0 * std::pow(load * params.load_unit, params.alpha);
  }
  return sum;
}

}  // namespace

Theorem1Pattern build_theorem1_pattern(std::int32_t half, double traffic,
                                       const PowerModel& model) {
  PAMR_CHECK(half >= 1, "need p' >= 1");
  PAMR_CHECK(traffic > 0.0, "traffic must be positive");
  const std::int32_t p = 2 * half;  // square 2p' × 2p' mesh
  const Mesh mesh(p, p);

  Theorem1Pattern pattern;
  pattern.half = half;
  pattern.traffic = traffic;
  pattern.link_loads.assign(static_cast<std::size_t>(mesh.num_links()), 0.0);

  // Loads are described in the paper's 1-based coordinates. The "symmetrical
  // routes for the other half" are the anti-transpose reflection
  // (u,v) → (p+1-v, p+1-u): it maps source to sink, fixes the centre
  // diagonal pointwise (so flow is conserved where the halves meet) and
  // maps east links to south links and vice versa.
  auto add_east = [&](std::int32_t u1, std::int32_t v1, double weight) {
    const LinkId first = mesh.link_from({u1 - 1, v1 - 1}, LinkDir::kEast);
    PAMR_ASSERT(first != kInvalidLink);
    pattern.link_loads[static_cast<std::size_t>(first)] += weight;
    const LinkId mirrored = mesh.link_from({p - v1 - 1, p - u1}, LinkDir::kSouth);
    PAMR_ASSERT(mirrored != kInvalidLink);
    pattern.link_loads[static_cast<std::size_t>(mirrored)] += weight;
  };
  auto add_south = [&](std::int32_t u1, std::int32_t v1, double weight) {
    const LinkId first = mesh.link_from({u1 - 1, v1 - 1}, LinkDir::kSouth);
    PAMR_ASSERT(first != kInvalidLink);
    pattern.link_loads[static_cast<std::size_t>(first)] += weight;
    const LinkId mirrored = mesh.link_from({p - v1, p - u1 - 1}, LinkDir::kEast);
    PAMR_ASSERT(mirrored != kInvalidLink);
    pattern.link_loads[static_cast<std::size_t>(mirrored)] += weight;
  };

  // Odd cuts D(2k-1) → D(2k): cores C(j, 2k-j), j = 1..k, send h_k = K/k
  // east.
  for (std::int32_t k = 1; k <= half; ++k) {
    const double h_k = traffic / static_cast<double>(k);
    for (std::int32_t j = 1; j <= k; ++j) add_east(j, 2 * k - j, h_k);
  }
  // Even cuts D(2k) → D(2k+1): cores C(j, 2k+1-j), j = 1..k, send
  // r_{k,j} east and d_{k,j} south.
  for (std::int32_t k = 1; k <= half - 1; ++k) {
    const double denom = static_cast<double>(k) * static_cast<double>(k + 1);
    for (std::int32_t j = 1; j <= k; ++j) {
      const double r = traffic * static_cast<double>(k + 1 - j) / denom;
      const double d = traffic * static_cast<double>(j) / denom;
      add_east(j, 2 * k + 1 - j, r);
      add_south(j, 2 * k + 1 - j, d);
    }
  }

  const PowerParams& params = model.params();
  pattern.pattern_power = continuous_dynamic_power(pattern.link_loads, params);
  // XY routes everything over one corner-to-corner path: 2p - 2 links at
  // load K (the paper rounds this to 2p).
  pattern.xy_power = static_cast<double>(2 * p - 2) * params.p0 *
                     std::pow(traffic * params.load_unit, params.alpha);
  pattern.ratio = pattern.xy_power / pattern.pattern_power;
  return pattern;
}

Lemma2Instance build_lemma2_instance(std::int32_t p_prime, const PowerModel& model) {
  PAMR_CHECK(p_prime >= 1, "need p' >= 1");
  const Mesh mesh(p_prime + 1, p_prime + 1);

  Lemma2Instance instance;
  instance.p_prime = p_prime;
  // Paper (1-based): γ_i = (C(1,i), C(i, p'+1), 1), i = 1..p'.
  for (std::int32_t i = 1; i <= p_prime; ++i) {
    instance.comms.push_back(
        Communication{{0, i - 1}, {i - 1, p_prime}, 1.0});
  }

  // Figure 5(a): the YX routing (vertical first, then horizontal) gives
  // pairwise link-disjoint paths.
  std::vector<Path> yx_paths;
  yx_paths.reserve(instance.comms.size());
  for (const Communication& comm : instance.comms) {
    yx_paths.push_back(yx_path(mesh, comm.src, comm.snk));
  }
  instance.yx_routing = make_single_path_routing(instance.comms, std::move(yx_paths));

  const PowerParams& params = model.params();
  {
    const LinkLoads loads = loads_of_routing(mesh, instance.yx_routing);
    std::vector<double> dense(loads.values().begin(), loads.values().end());
    instance.yx_power = continuous_dynamic_power(dense, params);
  }
  {
    std::vector<Path> xy_paths;
    xy_paths.reserve(instance.comms.size());
    for (const Communication& comm : instance.comms) {
      xy_paths.push_back(xy_path(mesh, comm.src, comm.snk));
    }
    const Routing xy_routing =
        make_single_path_routing(instance.comms, std::move(xy_paths));
    const LinkLoads loads = loads_of_routing(mesh, xy_routing);
    std::vector<double> dense(loads.values().begin(), loads.values().end());
    instance.xy_power = continuous_dynamic_power(dense, params);
  }
  instance.ratio = instance.xy_power / instance.yx_power;
  return instance;
}

}  // namespace pamr
