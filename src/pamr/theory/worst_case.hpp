// Worst-case constructions of §4.1.
//
// Theorem 1 (single source/destination): on a 2p'×2p' mesh, routing total
// traffic K from corner to corner with the explicit diffusion pattern of
// Figure 4 (h_k = K/k on the odd cuts; r_{k,j} = (k+1-j)/(k(k+1))·K and
// d_{k,j} = j/(k(k+1))·K on the even cuts, mirrored about the centre) costs
// O(K^α) while XY costs (2p)·K^α — the ratio grows as Θ(p).
//
// Lemma 2 (multiple sources/destinations): on a (p'+1)×(p'+1) mesh the
// instance γ_i = (C(1,i), C(i,p'+1), 1), i = 1..p', has P_XY = 2Σ i^α but a
// YX (1-MP) routing of cost p'(p'+1) — the ratio grows as Θ(p^{α-1}).
#pragma once

#include <cstdint>
#include <vector>

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/routing.hpp"

namespace pamr {

struct Theorem1Pattern {
  std::int32_t half = 0;            ///< p' (mesh is 2p' × 2p')
  double traffic = 0.0;             ///< K
  std::vector<double> link_loads;   ///< dense, indexed by LinkId of `mesh(...)`
  double pattern_power = 0.0;       ///< continuous dynamic power of the pattern
  double xy_power = 0.0;            ///< (2p)·K^α
  double ratio = 0.0;               ///< xy_power / pattern_power
};

/// Builds the Figure-4 diffusion pattern for corner-to-corner traffic K on
/// a 2·half × 2·half mesh and evaluates it under `model`'s continuous
/// dynamic curve. The returned loads satisfy flow conservation (tested).
[[nodiscard]] Theorem1Pattern build_theorem1_pattern(std::int32_t half, double traffic,
                                                     const PowerModel& model);

struct Lemma2Instance {
  std::int32_t p_prime = 0;  ///< mesh is (p'+1) × (p'+1)
  CommSet comms;             ///< the p' unit communications
  Routing yx_routing;        ///< the 1-MP routing of Figure 5(a)
  double xy_power = 0.0;     ///< 2 Σ_{i=1..p'} i^α (continuous dynamic)
  double yx_power = 0.0;     ///< p'(p'+1)
  double ratio = 0.0;
};

[[nodiscard]] Lemma2Instance build_lemma2_instance(std::int32_t p_prime,
                                                   const PowerModel& model);

}  // namespace pamr
