#include "pamr/theory/path_count.hpp"

#include <limits>

#include "pamr/opt/path_enum.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<std::uint64_t>::max() : sum;
}

}  // namespace

std::vector<std::vector<std::uint64_t>> path_count_table(std::int32_t p, std::int32_t q) {
  PAMR_CHECK(p >= 1 && q >= 1, "dimensions must be positive");
  std::vector<std::vector<std::uint64_t>> table(
      static_cast<std::size_t>(p), std::vector<std::uint64_t>(static_cast<std::size_t>(q), 1));
  for (std::size_t u = 1; u < static_cast<std::size_t>(p); ++u) {
    for (std::size_t v = 1; v < static_cast<std::size_t>(q); ++v) {
      table[u][v] = saturating_add(table[u - 1][v], table[u][v - 1]);
    }
  }
  return table;
}

std::uint64_t corner_to_corner_paths(std::int32_t p, std::int32_t q) noexcept {
  return count_manhattan_paths(p - 1, q - 1);
}

std::uint64_t max_mp_split_bound(const Mesh& mesh) noexcept {
  return corner_to_corner_paths(mesh.p(), mesh.q());
}

}  // namespace pamr
