// Theorem 3: the NP-completeness gadget.
//
// Reduction from 2-PARTITION: given positive integers a_1..a_n with sum S,
// build a 2 × q mesh with q = (s-1)·n + 2 and link bandwidth
// BW = S/2 + (s-1)·n, plus
//   * n "traversing" communications γ_i = (C(1,(i-1)(s-1)+1), C(2,q),
//     a_i + s - 1), and
//   * q blocking one-hop vertical communications that saturate every
//     vertical link down to exactly the residual capacities of the proof
//     (BW-1 on columns 1..q-2, BW-S/2 on the last two columns).
// A valid s-MP routing exists iff the 2-partition instance is a yes
// instance; from a certificate subset I the proof's explicit routing is
// constructed here (and validated in the tests).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pamr/comm/communication.hpp"
#include "pamr/mesh/mesh.hpp"
#include "pamr/power/power_model.hpp"
#include "pamr/routing/routing.hpp"

namespace pamr {

struct NpGadget {
  std::int32_t n = 0;            ///< number of 2-partition items
  std::int32_t s = 0;            ///< max paths per communication
  std::int32_t q = 0;            ///< mesh is 2 × q
  double bandwidth = 0.0;        ///< BW = S/2 + (s-1)·n
  std::vector<std::int64_t> items;
  CommSet comms;                 ///< first n are the traversing γ_i

  [[nodiscard]] Mesh make_mesh() const { return Mesh(2, q); }

  /// Continuous model whose capacity is exactly BW (power constants are
  /// irrelevant to the reduction — only feasibility matters).
  [[nodiscard]] PowerModel make_model() const;
};

/// Builds the gadget. CHECKs n ≥ 1, s ≥ 2 and even S (odd sums are trivial
/// no-instances and have no faithful gadget).
[[nodiscard]] NpGadget build_np_gadget(const std::vector<std::int64_t>& items,
                                       std::int32_t s);

/// Exact 2-partition via subset-sum DP: returns a subset of indices summing
/// to S/2, or nullopt. O(n · S) time/space.
[[nodiscard]] std::optional<std::vector<std::size_t>> solve_two_partition(
    const std::vector<std::int64_t>& items);

/// The proof's explicit routing for a yes-certificate `subset` (indices
/// whose a_i descend through column q-1; the rest descend through column
/// q). The result is a valid s-MP routing of the gadget (validated in the
/// tests).
[[nodiscard]] Routing certificate_routing(const NpGadget& gadget,
                                          const std::vector<std::size_t>& subset);

}  // namespace pamr
