#include "pamr/theory/np_reduction.hpp"

#include <numeric>

#include "pamr/routing/path.hpp"
#include "pamr/util/assert.hpp"

namespace pamr {

PowerModel NpGadget::make_model() const {
  PowerParams params;
  params.p_leak = 0.0;
  params.p0 = 1.0;
  params.alpha = 3.0;
  params.bandwidth = bandwidth;
  params.load_unit = 1.0;
  return PowerModel(params);
}

NpGadget build_np_gadget(const std::vector<std::int64_t>& items, std::int32_t s) {
  PAMR_CHECK(!items.empty(), "need at least one item");
  PAMR_CHECK(s >= 2, "the reduction needs s >= 2");
  for (const std::int64_t item : items) {
    PAMR_CHECK(item > 0, "items must be strictly positive");
  }
  const std::int64_t total = std::accumulate(items.begin(), items.end(), std::int64_t{0});
  PAMR_CHECK(total % 2 == 0, "odd item sums are trivial no-instances");

  NpGadget gadget;
  gadget.n = static_cast<std::int32_t>(items.size());
  gadget.s = s;
  gadget.items = items;
  gadget.q = (s - 1) * gadget.n + 2;
  gadget.bandwidth =
      static_cast<double>(total) / 2.0 + static_cast<double>((s - 1) * gadget.n);

  // Traversing communications: γ_i from C(1, (i-1)(s-1)+1) to C(2, q) with
  // weight a_i + s - 1 (paper coordinates are 1-based; ours 0-based).
  for (std::int32_t i = 0; i < gadget.n; ++i) {
    gadget.comms.push_back(Communication{
        {0, i * (s - 1)},
        {1, gadget.q - 1},
        static_cast<double>(items[static_cast<std::size_t>(i)]) +
            static_cast<double>(s - 1)});
  }
  // Blocking one-hop vertical communications: BW-1 on columns 1..q-2,
  // BW - S/2 on the last two columns.
  for (std::int32_t column = 0; column < gadget.q - 2; ++column) {
    gadget.comms.push_back(
        Communication{{0, column}, {1, column}, gadget.bandwidth - 1.0});
  }
  const double residual = gadget.bandwidth - static_cast<double>(total) / 2.0;
  gadget.comms.push_back(
      Communication{{0, gadget.q - 2}, {1, gadget.q - 2}, residual});
  gadget.comms.push_back(
      Communication{{0, gadget.q - 1}, {1, gadget.q - 1}, residual});
  return gadget;
}

std::optional<std::vector<std::size_t>> solve_two_partition(
    const std::vector<std::int64_t>& items) {
  const std::int64_t total = std::accumulate(items.begin(), items.end(), std::int64_t{0});
  if (total % 2 != 0) return std::nullopt;
  const auto target = static_cast<std::size_t>(total / 2);

  // reachable[v] = 1 + index of the last item used to first reach sum v
  // (0 = unreached, so backtracking recovers one witness subset).
  std::vector<std::size_t> reached_by(target + 1, 0);
  std::vector<char> reachable(target + 1, 0);
  reachable[0] = 1;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto item = static_cast<std::size_t>(items[i]);
    if (item > target) continue;
    for (std::size_t v = target; v + 1 > item; --v) {
      const std::size_t below = v - item;
      if (reachable[below] != 0 && reachable[v] == 0) {
        reachable[v] = 1;
        reached_by[v] = i + 1;
      }
    }
  }
  if (reachable[target] == 0) return std::nullopt;

  std::vector<std::size_t> subset;
  std::size_t v = target;
  while (v > 0) {
    PAMR_ASSERT(reached_by[v] != 0);
    const std::size_t item_index = reached_by[v] - 1;
    subset.push_back(item_index);
    v -= static_cast<std::size_t>(items[item_index]);
  }
  return subset;
}

Routing certificate_routing(const NpGadget& gadget,
                            const std::vector<std::size_t>& subset) {
  const Mesh mesh = gadget.make_mesh();
  std::vector<char> in_subset(static_cast<std::size_t>(gadget.n), 0);
  for (const std::size_t index : subset) {
    PAMR_CHECK(index < static_cast<std::size_t>(gadget.n), "subset index out of range");
    in_subset[index] = 1;
  }

  Routing routing;
  routing.per_comm.resize(gadget.comms.size());

  // Builds the flow that rides row 0 east to `descend_column`, drops to row
  // 1 and rides east to the sink column q-1.
  const auto traverse_flow = [&](std::int32_t source_column,
                                 std::int32_t descend_column, double weight) {
    std::vector<Coord> cores;
    for (std::int32_t c = source_column; c <= descend_column; ++c) {
      cores.push_back({0, c});
    }
    for (std::int32_t c = descend_column; c <= gadget.q - 1; ++c) {
      cores.push_back({1, c});
    }
    return RoutedFlow{path_from_cores(mesh, cores), weight};
  };

  for (std::int32_t i = 0; i < gadget.n; ++i) {
    CommRouting& routed = routing.per_comm[static_cast<std::size_t>(i)];
    const std::int32_t source_column = i * (gadget.s - 1);
    // s-1 unit flows through the columns of block i (paper: δ_{i,k} = 1,
    // descending at column (i-1)(s-1)+k).
    for (std::int32_t k = 0; k < gadget.s - 1; ++k) {
      routed.flows.push_back(traverse_flow(source_column, source_column + k, 1.0));
    }
    // Final flow of weight a_i through column q-2 (i ∈ I) or q-1 (i ∉ I).
    const std::int32_t descend =
        in_subset[static_cast<std::size_t>(i)] != 0 ? gadget.q - 2 : gadget.q - 1;
    routed.flows.push_back(traverse_flow(
        source_column, descend,
        static_cast<double>(gadget.items[static_cast<std::size_t>(i)])));
  }

  // Blockers: the forced one-hop vertical paths.
  for (std::size_t index = static_cast<std::size_t>(gadget.n);
       index < gadget.comms.size(); ++index) {
    const Communication& comm = gadget.comms[index];
    routing.per_comm[index].flows.push_back(RoutedFlow{
        path_from_cores(mesh, {comm.src, comm.snk}), comm.weight});
  }
  return routing;
}

}  // namespace pamr
