// Lemma 1: "There are C(p+q-2, p-1) Manhattan paths going from C(1,1) to
// C(p,q)." This module exposes both the closed form and the N(u,v) =
// N(u-1,v) + N(u,v-1) recursion from the proof (the recursion doubles as an
// independent oracle in the tests), plus the max-MP bound it implies: a
// max-MP routing never needs more paths per communication than the count.
#pragma once

#include <cstdint>
#include <vector>

#include "pamr/mesh/mesh.hpp"

namespace pamr {

/// N(u, v) table (1-based semantics, table[u][v] with 0 ≤ u < p, 0 ≤ v < q):
/// number of Manhattan paths from C(0,0) to C(u,v), built by the proof's
/// recursion. Saturates at uint64 max.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> path_count_table(std::int32_t p,
                                                                       std::int32_t q);

/// Closed form C(p+q-2, p-1), saturating.
[[nodiscard]] std::uint64_t corner_to_corner_paths(std::int32_t p, std::int32_t q) noexcept;

/// Maximum number of distinct paths any communication on `mesh` can use
/// (the bound on max-MP splitting promised in §3.3/“We bound this number in
/// Section 4”).
[[nodiscard]] std::uint64_t max_mp_split_bound(const Mesh& mesh) noexcept;

}  // namespace pamr
